#include "svc/dist_search.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "opt/checkpoint.hpp"
#include "svc/client.hpp"
#include "svc/fingerprint.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace svtox::svc {

namespace {

bool cancelled(const DistSearchContext& ctx) {
  return ctx.cancel != nullptr && ctx.cancel->load(std::memory_order_relaxed);
}

/// Total order on snapshots of one subtree's (deterministic) execution: a
/// later snapshot has strictly more leaves+probes, and the probe phase
/// dominates the tree phase. Used to gate token refreshes so a stale
/// snapshot never replaces a newer one.
std::uint64_t checkpoint_progress(const opt::SearchCheckpoint& checkpoint) {
  return (checkpoint.tree_done ? (1ULL << 62) : 0) + checkpoint.leaves +
         checkpoint.probes_done;
}

opt::Solution checkpoint_solution(const opt::SearchCheckpoint& checkpoint) {
  opt::Solution solution;
  solution.sleep_vector = checkpoint.sleep_vector;
  solution.config = checkpoint.config;
  solution.leakage_na = checkpoint.leakage_na;
  solution.delay_ps = checkpoint.delay_ps;
  solution.nodes_visited = checkpoint.nodes;
  solution.states_explored = checkpoint.leaves;
  solution.runtime_s = checkpoint.elapsed_s;
  solution.interrupted = !checkpoint.tree_done;
  return solution;
}

/// The search's own leaf tie-break (lowest leakage, then lexicographically
/// smallest sleep vector), so the merge commutes: any completion order of
/// the subtree set yields the same incumbent.
bool better(const opt::Solution& a, const opt::Solution& b) {
  if (a.leakage_na != b.leakage_na) return a.leakage_na < b.leakage_na;
  return a.sleep_vector < b.sleep_vector;
}

/// One subtree of the root frontier. `bits`/`fingerprint`/`key` are
/// immutable after construction (readable without the board lock); the
/// token and completion state are guarded by TaskBoard::mu_.
struct Task {
  std::string bits;               ///< '0'/'1' prefix, root level first.
  std::uint64_t fingerprint = 0;  ///< search_fingerprint of this subtree.
  std::string key;                ///< The worker-side job/checkpoint key.
  std::string token;              ///< Latest migration token (resume_text).
  std::uint64_t token_progress = 0;
  bool done = false;
  bool interrupted = false;
  opt::Solution solution;
};

/// Work-stealing board shared by the inline drain and the per-peer
/// dispatchers. A popped task has exactly one active claimant until it is
/// either completed or requeued (a steal); completion is first-result-wins,
/// which keeps the counter totals exact under at-least-once dispatch
/// (duplicate completions are byte-identical anyway).
class TaskBoard {
 public:
  /// Tasks already marked done (restored from a ledger) are counted and
  /// never enqueued -- their recorded solutions go straight to the merge.
  explicit TaskBoard(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      if (tasks_[i].done) {
        ++done_count_;
      } else {
        ready_.push_back(i);
      }
    }
  }

  const Task& peek(std::size_t index) const { return tasks_[index]; }

  bool try_pop(std::size_t& index, std::string& token) {
    std::lock_guard<std::mutex> lock(mu_);
    while (!ready_.empty()) {
      const std::size_t i = ready_.front();
      ready_.pop_front();
      if (tasks_[i].done) continue;
      index = i;
      token = tasks_[i].token;
      return true;
    }
    return false;
  }

  void requeue(std::size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!tasks_[index].done) ready_.push_back(index);
    cv_.notify_all();
  }

  void complete(std::size_t index, opt::Solution solution, bool interrupted) {
    std::lock_guard<std::mutex> lock(mu_);
    Task& task = tasks_[index];
    if (task.done) return;
    task.done = true;
    task.solution = std::move(solution);
    task.interrupted = interrupted;
    ++done_count_;
    ++version_;
    cv_.notify_all();
  }

  /// Progress-gated: resuming from any valid snapshot of the same search
  /// converges identically, so newer is purely a speed win.
  void update_token(std::size_t index, std::string token, std::uint64_t progress) {
    std::lock_guard<std::mutex> lock(mu_);
    Task& task = tasks_[index];
    if (task.done || progress <= task.token_progress) return;
    task.token = std::move(token);
    task.token_progress = progress;
    ++version_;
  }

  bool all_done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_count_ == tasks_.size();
  }

  /// Idle wait for the drain loop when every remaining task is claimed by
  /// a dispatcher; bounded so steals/cancellation are noticed promptly.
  void wait_progress() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(50));
  }

  std::vector<Task> take() { return std::move(tasks_); }

  /// Consistent copy of every task, for the ledger writer.
  std::vector<Task> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_;
  }

  /// Bumped on every completion/token refresh -- the ledger writer's
  /// "something changed" signal.
  std::uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Task> tasks_;
  std::deque<std::size_t> ready_;
  std::size_t done_count_ = 0;
  std::uint64_t version_ = 0;
};

/// Pulls the worker's latest on-disk checkpoint for `index` and refreshes
/// the migration token. Best-effort: a missing file, torn snapshot or
/// foreign fingerprint just keeps the current token.
void fetch_token(Client& client, TaskBoard& board, std::size_t index) {
  Json request = Json::object();
  request.set("cmd", "checkpoint_fetch");
  request.set("key", board.peek(index).key);
  const Json reply = client.request(request);
  const Json* ok = reply.get("ok");
  if (ok == nullptr || !ok->as_bool(false)) return;
  const Json* found = reply.get("found");
  if (found == nullptr || !found->as_bool(false)) return;
  const Json* text = reply.get("checkpoint");
  if (text == nullptr || !text->is_string()) return;
  try {
    const opt::SearchCheckpoint checkpoint = opt::parse_checkpoint(text->as_string());
    if (checkpoint.fingerprint != board.peek(index).fingerprint) return;
    board.update_token(index, text->as_string(), checkpoint_progress(checkpoint));
  } catch (const std::exception&) {
    // Torn mid-write or corrupt: the previous token stands.
  }
}

/// Settles a remote job that reached a terminal state. tree_done means the
/// worker finished the subtree's whole deterministic work unit (exhausted
/// it or consumed the leaf budget) -- that is a result. Anything else
/// (cancelled mid-run, failed, no checkpoint attached) only yields resume
/// material: refresh the token if the blob carries one and requeue.
void settle_terminal(TaskBoard& board, std::size_t index, const JobResult& result) {
  if (!result.checkpoint_text.empty()) {
    try {
      const opt::SearchCheckpoint checkpoint =
          opt::parse_checkpoint(result.checkpoint_text);
      if (checkpoint.tree_done) {
        board.complete(index, checkpoint_solution(checkpoint), /*interrupted=*/false);
        return;
      }
      if (checkpoint.fingerprint == board.peek(index).fingerprint) {
        board.update_token(index, result.checkpoint_text,
                           checkpoint_progress(checkpoint));
      }
    } catch (const std::exception&) {
      // Unparseable blob: treat like a failure, requeue from the old token.
    }
  }
  board.requeue(index);
}

/// One peer's dispatcher thread: ship a task, babysit it, settle or steal
/// it, repeat. Any transport error requeues the in-flight task and retires
/// the dispatcher -- the inline drain is always a sufficient fallback, so
/// a dead peer costs throughput, never correctness or termination.
void serve_peer(TaskBoard& board, const JobSpec& base_spec,
                const DistSearchContext& ctx, const std::string& peer) {
  const ClientOptions client_options = ctx.cluster->client_options();
  std::unique_ptr<Client> client;
  try {
    client = std::make_unique<Client>("tcp://" + peer, client_options);
  } catch (const std::exception& e) {
    log_warn("distributed search: peer " + peer + " unreachable (" + e.what() +
             "); solving its share locally");
    return;
  }
  const auto poll = std::chrono::duration<double>(ctx.poll_interval_s);
  while (!board.all_done() && !cancelled(ctx)) {
    std::size_t index = 0;
    std::string token;
    if (!board.try_pop(index, token)) {
      board.wait_progress();
      continue;
    }
    bool settled = false;
    try {
      JobSpec sub = base_spec;
      sub.subtree_prefix = board.peek(index).bits;
      sub.resume_text = std::move(token);
      const std::uint64_t id = client->submit(sub);
      Timer queued_timer;
      std::optional<Timer> running_timer;
      Timer fetch_timer;
      for (;;) {
        if (cancelled(ctx)) {
          client->cancel(id);
          board.requeue(index);
          settled = true;
          break;
        }
        const std::string status = client->status(id);
        if (status == "queued") {
          if (queued_timer.seconds() > ctx.queued_grace_s) {
            // The peer never started it (busy / wedged queue): take the
            // subtree back before it becomes a straggler.
            client->cancel(id);
            board.requeue(index);
            settled = true;
            break;
          }
        } else if (status == "running") {
          if (!running_timer) running_timer.emplace();
          if (fetch_timer.seconds() >= 1.0) {
            fetch_timer = Timer();
            fetch_token(*client, board, index);
          }
          if (running_timer->seconds() > ctx.steal_after_s) {
            // Straggler: grab the freshest snapshot, cancel remotely and
            // requeue so someone else resumes from it. The remote run may
            // still finish -- first result wins, and both are identical.
            fetch_token(*client, board, index);
            client->cancel(id);
            board.requeue(index);
            settled = true;
            break;
          }
        } else {
          settle_terminal(board, index, client->result(id, /*include_solution=*/true));
          settled = true;
          break;
        }
        std::this_thread::sleep_for(poll);
      }
    } catch (const std::exception& e) {
      if (!settled) board.requeue(index);
      log_warn("distributed search: peer " + peer + " failed mid-dispatch (" +
               e.what() + "); retiring its dispatcher");
      return;
    }
  }
}

std::vector<bool> prefix_bits(const std::string& bits) {
  std::vector<bool> out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) out[i] = bits[i] == '1';
  return out;
}

// ---------------------------------------------------------------------------
// Job ledger: the coordinator-failover journal. One JSON document holding
// the (inlined) spec plus each subtree's latest migration token and
// completion state, refreshed whenever board progress lands. Completed
// subtrees are stored as synthesized tree_done tokens -- the checkpoint
// format already carries the full solution and counters, so a resume
// restores them verbatim through the exact code path a worker's terminal
// checkpoint takes.

/// A tree_done token for a settled subtree; checkpoint_solution() inverts
/// this exactly (interrupted = !tree_done = false).
std::string synth_done_token(const Task& task) {
  opt::SearchCheckpoint checkpoint;
  checkpoint.fingerprint = task.fingerprint;
  checkpoint.tree_done = true;
  checkpoint.probes_done = 0;
  checkpoint.nodes = task.solution.nodes_visited;
  checkpoint.leaves = task.solution.states_explored;
  checkpoint.elapsed_s = task.solution.runtime_s;
  checkpoint.sleep_vector = task.solution.sleep_vector;
  checkpoint.config = task.solution.config;
  checkpoint.leakage_na = task.solution.leakage_na;
  checkpoint.delay_ps = task.solution.delay_ps;
  return opt::write_checkpoint(checkpoint);
}

/// Atomic (temp + rename) best-effort write. Losing a ledger write costs
/// re-solved subtrees after a crash, never the current run.
void write_ledger_file(const std::string& path, const Json& header,
                       const std::vector<Task>& tasks) {
  Json doc = header;
  Json::Array entries;
  entries.reserve(tasks.size());
  for (const Task& task : tasks) {
    // A cancelled (interrupted) completion holds a best-so-far incumbent,
    // not the subtree's canonical result: journal it as unfinished with
    // its latest token so a resume finishes the work instead of merging a
    // partial answer as final.
    const bool settled = task.done && !task.interrupted;
    Json entry = Json::object();
    entry.set("bits", task.bits);
    entry.set("done", settled);
    entry.set("token", settled ? synth_done_token(task) : task.token);
    entries.push_back(std::move(entry));
  }
  doc.set("tasks", Json(std::move(entries)));
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw Error(ErrorCode::kIo, "cannot write " + tmp);
      out << doc.dump() << '\n';
      out.flush();
      if (!out) throw Error(ErrorCode::kIo, "short write on " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw Error(ErrorCode::kIo, "cannot rename " + tmp);
    }
  } catch (const std::exception& e) {
    log_warn(std::string("job ledger: ") + e.what());
  }
}

/// Restores prior progress from `path` into the freshly recomputed task
/// set. Every entry must match a task (bits + token fingerprint, which
/// covers the circuit, penalty and every search knob); any mismatch or
/// parse failure discards the whole ledger -- resuming is optional, never
/// load-bearing. Returns true when anything was restored.
bool load_ledger_file(const std::string& path, std::vector<Task>& tasks) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  bool restored = false;
  std::vector<Task> patched = tasks;
  try {
    const Json doc = Json::parse(text.str());
    const Json* magic = doc.get("svtox_ledger");
    if (magic == nullptr || magic->as_int() != 1) {
      throw Error(ErrorCode::kParse, "not a svtox job ledger");
    }
    const Json* entries = doc.get("tasks");
    if (entries == nullptr || !entries->is_array()) {
      throw Error(ErrorCode::kParse, "ledger without a tasks array");
    }
    for (const Json& entry : entries->as_array()) {
      const Json* bits = entry.get("bits");
      const Json* token = entry.get("token");
      if (bits == nullptr || token == nullptr) {
        throw Error(ErrorCode::kParse, "malformed ledger entry");
      }
      auto it = std::find_if(
          patched.begin(), patched.end(),
          [&](const Task& task) { return task.bits == bits->as_string(); });
      if (it == patched.end()) {
        throw Error(ErrorCode::kParse, "subtree '" + bits->as_string() + "' not in this job");
      }
      const opt::SearchCheckpoint checkpoint =
          opt::parse_checkpoint(token->as_string());
      if (checkpoint.fingerprint != it->fingerprint) {
        throw Error(ErrorCode::kParse, "token fingerprint mismatch for subtree " + it->bits);
      }
      const Json* done = entry.get("done");
      if (done != nullptr && done->as_bool(false)) {
        if (!checkpoint.tree_done) {
          throw Error(ErrorCode::kParse, "done entry without a tree_done token");
        }
        it->done = true;
        it->interrupted = false;
        it->solution = checkpoint_solution(checkpoint);
        it->token = token->as_string();
        it->token_progress = checkpoint_progress(checkpoint);
        restored = true;
      } else if (checkpoint_progress(checkpoint) > it->token_progress) {
        it->token = token->as_string();
        it->token_progress = checkpoint_progress(checkpoint);
        restored = true;
      }
    }
  } catch (const std::exception& e) {
    log_warn("job ledger: discarding " + path + " (" + e.what() + ")");
    return false;
  }
  tasks = std::move(patched);
  return restored;
}

}  // namespace

core::MethodResult distributed_search(const JobSpec& spec, DistSearchContext& ctx) {
  Timer timer;
  const core::Method method = core::method_from_string(spec.method);
  const double penalty = spec.penalty_percent / 100.0;

  // All subtree work units run under the deterministic leaf budget with an
  // effectively-infinite wall clock: elapsed time varies per node and per
  // run, so it must never decide what gets explored.
  core::RunConfig base_config;
  base_config.penalty_fraction = penalty;
  base_config.time_limit_s = 1e9;
  base_config.random_vectors = spec.random_vectors;
  base_config.seed = spec.seed;
  base_config.threads = 1;
  base_config.max_leaves = spec.max_leaves;
  base_config.checkpoint_every_s = ctx.checkpoint_every_s;

  const core::SearchPlan plan = core::StandbyOptimizer::search_plan(method, base_config);
  if (!plan.splittable) {
    throw ContractError("method '" + spec.method + "' cannot be split by subtree");
  }
  const opt::AssignmentProblem& problem = ctx.optimizer.problem(method, penalty);
  const int inputs = static_cast<int>(problem.input_order().size());
  int depth = 1;
  while ((1 << depth) < spec.subtrees) ++depth;
  depth = std::min(depth, std::min(inputs, 10));
  if (depth < 1) {
    // Degenerate circuit (no primary inputs to split on): run flat.
    core::RunConfig flat = base_config;
    flat.cancel = ctx.cancel;
    return ctx.optimizer.run(method, flat);
  }
  const std::size_t count = std::size_t{1} << depth;

  // Seed descent: ONE deterministic leaf, computed here and shipped in
  // every token, so each subtree starts from the identical incumbent no
  // matter where (or how often) it runs. Deliberately opt-level with the
  // probe sweep off -- the facade's state-only path runs a wall-clock-
  // gated probe sweep, which would make the seed schedule-dependent.
  opt::SearchOptions seed_options = plan.options;
  seed_options.max_leaves = 1;
  seed_options.random_probes = 0;
  seed_options.threads = 1;
  seed_options.cancel = nullptr;
  seed_options.checkpoint_path.clear();
  const opt::Solution seed = [&] {
    switch (method) {
      case core::Method::kStateOnly:
        return opt::state_only_search(problem, seed_options);
      case core::Method::kExact:
        return opt::exact_search(problem, seed_options);
      default:
        return opt::heuristic2(problem, seed_options);
    }
  }();

  std::vector<Task> tasks(count);
  for (std::size_t s = 0; s < count; ++s) {
    Task& task = tasks[s];
    opt::SearchOptions sub_options = plan.options;
    sub_options.threads = 1;
    sub_options.random_probes = 0;
    sub_options.subtree_prefix.resize(static_cast<std::size_t>(depth));
    task.bits.reserve(static_cast<std::size_t>(depth));
    for (int d = 0; d < depth; ++d) {
      const bool bit = ((s >> (depth - 1 - d)) & 1u) != 0;
      sub_options.subtree_prefix[static_cast<std::size_t>(d)] = bit;
      task.bits.push_back(bit ? '1' : '0');
    }
    // Must match the fingerprint a worker computes for the shipped spec --
    // run_search forces threads=1 / probes=0 in restricted mode before
    // fingerprinting, mirrored above. A divergence would make workers
    // silently drop the token and search unseeded.
    task.fingerprint =
        opt::search_fingerprint(problem, sub_options, plan.bound_kind, plan.state_only);

    RunKnobs knobs;
    knobs.method = spec.method;
    knobs.penalty_fraction = penalty;
    knobs.time_limit_s = 1e9;
    knobs.random_vectors = spec.random_vectors;
    knobs.seed = spec.seed;
    knobs.search_threads = 1;
    knobs.max_leaves = spec.max_leaves;
    knobs.subtree_prefix = task.bits;
    task.key = cache_key(ctx.library_fp, ctx.netlist_fp, knobs);

    opt::SearchCheckpoint token;
    token.fingerprint = task.fingerprint;
    token.sleep_vector = seed.sleep_vector;
    token.config = seed.config;
    token.leakage_na = seed.leakage_na;
    token.delay_ps = seed.delay_ps;
    // Path empty + counters zero: "start at the root with this incumbent".
    // The seed's own counters are NOT baked in -- every subtree owns its
    // full leaf budget, and the totals add the seed back exactly once.
    task.token = opt::write_checkpoint(token);
  }

  // Coordinator failover: adopt any prior run's ledger before the board is
  // built, so completed subtrees never re-enter the ready queue.
  const bool journal = !ctx.ledger_path.empty();
  if (journal && load_ledger_file(ctx.ledger_path, tasks)) {
    const std::size_t already_done = static_cast<std::size_t>(std::count_if(
        tasks.begin(), tasks.end(), [](const Task& t) { return t.done; }));
    log_info("distributed search: adopted ledger " + ctx.ledger_path + " (" +
             std::to_string(already_done) + "/" + std::to_string(count) +
             " subtrees already complete)");
    if (ctx.adopted != nullptr) {
      ctx.adopted->fetch_add(1, std::memory_order_relaxed);
    }
  }

  TaskBoard board(std::move(tasks));

  Json ledger_header = Json::object();
  std::thread ledger_writer;
  std::atomic<bool> ledger_stop{false};
  if (journal) {
    ledger_header.set("svtox_ledger", 1);
    ledger_header.set("owner", ctx.cluster != nullptr
                                   ? ctx.cluster->options().self
                                   : std::string());
    ledger_header.set("spec", job_spec_to_json(spec));
    // Initial write before any work: a coordinator crash from here on
    // leaves an adoptable journal.
    write_ledger_file(ctx.ledger_path, ledger_header, board.snapshot());
    ledger_writer = std::thread([&board, &ctx, &ledger_header, &ledger_stop] {
      std::uint64_t written = board.version();
      while (!ledger_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const std::uint64_t version = board.version();
        if (version == written) continue;
        write_ledger_file(ctx.ledger_path, ledger_header, board.snapshot());
        written = version;
      }
    });
  }

  JobSpec base_spec = spec;  // outlives the dispatcher threads
  std::vector<std::thread> dispatchers;
  if (ctx.cluster != nullptr) {
    base_spec.subtrees = 0;
    base_spec.search_threads = 1;
    base_spec.time_limit_s = 1e9;
    base_spec.use_cache = false;
    base_spec.deadline_s = 0.0;
    base_spec.retries = 0;
    // Shards outrank whole jobs so a cluster of coordinators drains each
    // other's frontiers instead of queueing them behind more coordinators.
    base_spec.priority = spec.priority + 1;
    for (const std::string& peer : ctx.cluster->peers()) {
      dispatchers.emplace_back([&board, &base_spec, &ctx, peer] {
        serve_peer(board, base_spec, ctx, peer);
      });
    }
  }

  // Inline drain: the coordinator's own worker thread is always a solver,
  // so the job terminates even with zero reachable peers. Keeps draining
  // after a cancel -- cancelled runs return their seeded incumbent almost
  // immediately, and every task must settle before the merge.
  while (!board.all_done()) {
    std::size_t index = 0;
    std::string token;
    if (!board.try_pop(index, token)) {
      board.wait_progress();
      continue;
    }
    core::RunConfig config = base_config;
    config.cancel = ctx.cancel;
    config.subtree_prefix = prefix_bits(board.peek(index).bits);
    config.resume_text = std::move(token);
    if (!ctx.checkpoint_dir.empty()) {
      config.checkpoint_path = ctx.checkpoint_dir + "/" + board.peek(index).key + ".ckpt";
    }
    const core::MethodResult run = ctx.optimizer.run(method, config);
    if (run.solution.interrupted && journal && !config.checkpoint_path.empty()) {
      // Cancelled inline run: pull its last on-disk snapshot into the
      // board token so the final ledger write resumes from it instead of
      // from the stale pre-run token.
      if (const std::optional<opt::SearchCheckpoint> snap =
              opt::load_checkpoint_file(config.checkpoint_path,
                                        board.peek(index).fingerprint)) {
        board.update_token(index, opt::write_checkpoint(*snap),
                           checkpoint_progress(*snap));
      }
    }
    board.complete(index, run.solution, run.solution.interrupted);
  }
  for (std::thread& dispatcher : dispatchers) dispatcher.join();
  if (ledger_writer.joinable()) {
    ledger_stop.store(true, std::memory_order_relaxed);
    ledger_writer.join();
  }

  const std::vector<Task> done = board.take();
  if (journal) {
    bool any_interrupted = false;
    for (const Task& task : done) any_interrupted |= task.interrupted;
    if (any_interrupted) {
      // Keep the journal current so a resubmission (or an adopting peer)
      // resumes from every subtree's final token.
      write_ledger_file(ctx.ledger_path, ledger_header, done);
    } else {
      std::remove(ctx.ledger_path.c_str());
      std::remove((ctx.ledger_path + ".tmp").c_str());
    }
  }
  opt::Solution best = seed;
  std::uint64_t nodes = seed.nodes_visited;
  std::uint64_t leaves = seed.states_explored;
  bool interrupted = false;
  for (const Task& task : done) {
    nodes += task.solution.nodes_visited;
    leaves += task.solution.states_explored;
    interrupted = interrupted || task.interrupted;
    if (better(task.solution, best)) best = task.solution;
  }
  best.nodes_visited = nodes;
  best.states_explored = leaves;
  best.interrupted = interrupted;
  best.runtime_s = timer.seconds();

  core::MethodResult out;
  out.method = method;
  out.solution = std::move(best);
  out.leakage_ua = out.solution.leakage_na / 1e3;
  out.reduction_x =
      ctx.optimizer.average_random_leakage_ua(spec.random_vectors, spec.seed) /
      out.leakage_ua;
  out.runtime_s = timer.seconds();
  return out;
}

}  // namespace svtox::svc
