#include "svc/solution_cache.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace svtox::svc {

SolutionCache::SolutionCache(const Options& options)
    : per_shard_capacity_(std::max<std::size_t>(
          1, options.capacity / std::max<std::size_t>(1, options.shards))),
      disk_dir_(options.disk_dir) {
  const std::size_t shards = std::max<std::size_t>(1, options.shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!disk_dir_.empty()) {
    // Best-effort create; a failed mkdir surfaces on the first store.
    ::mkdir(disk_dir_.c_str(), 0777);
  }
}

SolutionCache::Shard& SolutionCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void SolutionCache::touch_locked(Shard& shard, const std::string& key) {
  auto pos = shard.lru_pos.find(key);
  if (pos == shard.lru_pos.end()) return;
  shard.lru.erase(pos->second);
  shard.lru.push_front(key);
  pos->second = shard.lru.begin();
}

void SolutionCache::insert_locked(Shard& shard, const std::string& key,
                                  const JobResult& result) {
  if (shard.values.count(key) != 0) {
    shard.values[key] = result;
    touch_locked(shard, key);
    return;
  }
  shard.values.emplace(key, result);
  shard.lru.push_front(key);
  shard.lru_pos[key] = shard.lru.begin();
  std::uint64_t evicted = 0;
  while (shard.values.size() > per_shard_capacity_) {
    const std::string victim = shard.lru.back();
    shard.lru.pop_back();
    shard.lru_pos.erase(victim);
    shard.values.erase(victim);
    ++evicted;
  }
  shard.evictions.fetch_add(evicted, std::memory_order_relaxed);
}

std::optional<JobResult> SolutionCache::fetch_or_lock(const std::string& key,
                                                      double max_wait_s) {
  Shard& shard = shard_for(key);
  bool counted_wait = false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(max_wait_s > 0.0 ? max_wait_s : 0.0));
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    auto it = shard.values.find(key);
    if (it != shard.values.end()) {
      touch_locked(shard, key);
      JobResult result = it->second;
      result.cache_hit = true;
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    if (shard.inflight.count(key) == 0) {
      shard.inflight.insert(key);
      lock.unlock();
      // Owner path: consult the persistence dir before conceding a miss.
      if (std::optional<JobResult> from_disk = load_disk(shard, key)) {
        from_disk->cache_hit = true;
        publish(key, *from_disk);
        shard.disk_hits.fetch_add(1, std::memory_order_relaxed);
        return from_disk;
      }
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (!counted_wait) {
      counted_wait = true;
      shard.inflight_waits.fetch_add(1, std::memory_order_relaxed);
    }
    if (max_wait_s > 0.0) {
      if (shard.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          shard.values.find(key) == shard.values.end() &&
          shard.inflight.count(key) != 0) {
        // Timeout promotion: the marker's owner may be dead. The marker
        // stays (its owner could still publish and wake other waiters);
        // this caller just solves redundantly.
        shard.misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
    } else {
      shard.cv.wait(lock);
    }
  }
}

void SolutionCache::publish(const std::string& key, const JobResult& result) {
  if (result.interrupted) {
    // A best-so-far incumbent is not the canonical answer for this key.
    abandon(key);
    return;
  }
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    insert_locked(shard, key, result);
    shard.inflight.erase(key);
  }
  shard.cv.notify_all();
  if (!disk_dir_.empty() && !result.cache_hit) store_disk(key, result);
}

void SolutionCache::abandon(const std::string& key) {
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(key);
  }
  shard.cv.notify_all();
}

std::optional<JobResult> SolutionCache::peek(const std::string& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.values.find(key);
  if (it == shard.values.end()) return std::nullopt;
  JobResult result = it->second;
  result.cache_hit = true;
  return result;
}

CacheStats SolutionCache::stats() const {
  CacheStats out;
  for (const CacheStats& s : shard_stats()) {
    out.hits += s.hits;
    out.disk_hits += s.disk_hits;
    out.misses += s.misses;
    out.inflight_waits += s.inflight_waits;
    out.evictions += s.evictions;
    out.corrupt += s.corrupt;
    out.entries += s.entries;
    out.inflight += s.inflight;
  }
  return out;
}

std::vector<CacheStats> SolutionCache::shard_stats() const {
  std::vector<CacheStats> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    CacheStats stats;
    stats.hits = s->hits.load(std::memory_order_relaxed);
    stats.disk_hits = s->disk_hits.load(std::memory_order_relaxed);
    stats.misses = s->misses.load(std::memory_order_relaxed);
    stats.inflight_waits = s->inflight_waits.load(std::memory_order_relaxed);
    stats.evictions = s->evictions.load(std::memory_order_relaxed);
    stats.corrupt = s->corrupt.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> shard_lock(s->mu);
      stats.entries = s->values.size();
      stats.inflight = s->inflight.size();
    }
    out.push_back(stats);
  }
  return out;
}

std::optional<JobResult> SolutionCache::load_disk(const Shard& shard,
                                                  const std::string& key) const {
  if (disk_dir_.empty()) return std::nullopt;
  const std::string path = disk_dir_ + "/" + key + ".svcache";
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string meta_line;
  if (!std::getline(in, meta_line)) return std::nullopt;
  try {
    SVTOX_FAIL_POINT("cache_read");
    const Json meta = Json::parse(meta_line);
    JobResult result = job_result_from_json(meta);
    std::ostringstream text;
    text << in.rdbuf();
    result.solution_text = text.str();
    // Entries written since the checksum was added carry the text's
    // FNV-1a; verify it so a truncated or bit-rotted payload is dropped
    // instead of served as the canonical solution.
    if (const Json* stored = meta.get("text_fnv")) {
      if (stored->as_string() != hex64(fnv1a64(result.solution_text))) {
        throw Error(ErrorCode::kCorrupt, "solution text checksum mismatch");
      }
    }
    return result;
  } catch (const std::exception& e) {
    log_warn("solution cache: dropping corrupt entry " + key + ": " + e.what());
    shard.corrupt.fetch_add(1, std::memory_order_relaxed);
    std::remove(path.c_str());
    return std::nullopt;
  }
}

void SolutionCache::store_disk(const std::string& key, const JobResult& result) const {
  const std::string path = disk_dir_ + "/" + key + ".svcache";
  const std::string tmp = path + ".tmp";
  try {
    SVTOX_FAIL_POINT("cache_write");
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) throw Error(ErrorCode::kIo, "cannot write " + tmp);
      // Metadata line first (without the embedded text, but with its
      // checksum), then the verbatim solution_io payload.
      Json meta = job_result_to_json(result, /*include_solution=*/false);
      meta.set("text_fnv", hex64(fnv1a64(result.solution_text)));
      out << meta.dump() << '\n';
      out << result.solution_text;
      out.flush();
      if (!out) throw Error(ErrorCode::kIo, "short write on " + tmp);
    }
    // Atomic swap so a concurrent reader never sees a torn file.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw Error(ErrorCode::kIo, "cannot rename " + tmp);
    }
  } catch (const std::exception& e) {
    // Persistence is an optimization: a failed write costs a future
    // re-solve, never the current job.
    log_warn(std::string("solution cache: ") + e.what());
  }
}

}  // namespace svtox::svc
