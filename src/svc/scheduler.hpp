// Persistent job scheduler: a worker pool over the bounded priority
// JobQueue, executing OptimizeJobs against shared, content-addressed
// resources.
//
// What persists across jobs (the point of a service vs. one-shot CLI runs):
//  * A process-wide resource pool: characterized libraries and finalized
//    netlists are built once per content fingerprint and shared read-only
//    by every worker (library characterization dominates small-job cost).
//    Concurrent first requests for the same library dedup onto one build.
//  * Per-worker optimizer contexts: each worker keeps an LRU of
//    core::StandbyOptimizer instances keyed by (library, netlist)
//    fingerprint. The optimizer owns the per-penalty AssignmentProblems --
//    the canonicalization memos, variant menus and load-sliced NLDM tables
//    that LeafEvaluator/BoundEngine construction consumes -- plus the
//    Monte-Carlo baseline cache, so a job stream touching the same block
//    at many penalty points pays the setup once per worker.
//  * The SolutionCache: solved instances are returned byte-identical
//    without re-solving; concurrent identical submissions solve once.
//
// Each job gets a cooperative cancellation token (plumbed into
// opt::SearchOptions::cancel). Explicit cancel() requests and per-job
// deadlines (a monitor thread fires them) set the token: a running search
// returns its best-so-far incumbent flagged `interrupted`, a still-queued
// job is dropped as kCancelled. Shutdown is graceful: by default the
// backlog is drained, running jobs always complete.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "svc/job.hpp"
#include "svc/job_queue.hpp"
#include "svc/solution_cache.hpp"

namespace svtox::svc {

class Cluster;
class DistributedCache;
struct DistCacheStats;

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;   ///< Terminal for any reason.
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t executed = 0;    ///< Actually solved (not cache-served).
  std::uint64_t retried = 0;     ///< Re-run attempts after retryable errors.
  std::uint64_t jobs_adopted = 0;  ///< Coordinator ledgers restored (failover).
  std::size_t queued = 0;
  std::size_t running = 0;
  int workers = 0;
  CacheStats cache;
};

struct SchedulerOptions {
  int workers = 1;                 ///< 0 = all hardware threads.
  std::size_t queue_capacity = 256;
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
  std::string cache_dir;           ///< Disk persistence; empty = off.
  std::size_t contexts_per_worker = 8;  ///< Optimizer LRU per worker.
  /// Search checkpoint directory; empty = off. When set, every cacheable
  /// state-search job snapshots its search to
  /// `<checkpoint_dir>/<cache_key>.ckpt`, an interrupting shutdown (see
  /// shutdown()) leaves a resumable snapshot behind, and a resubmission of
  /// the same job resumes instead of restarting.
  std::string checkpoint_dir;
  double checkpoint_every_s = 5.0;  ///< Snapshot cadence (seconds).
  /// Distributed coordination: steal a remotely-running subtree from its
  /// worker after this long (its latest checkpoint migrates with it).
  double dist_steal_after_s = 30.0;
  double dist_poll_interval_s = 0.05;  ///< Remote job status poll cadence.
};

class Scheduler {
 public:
  using Options = SchedulerOptions;

  explicit Scheduler(const Options& options = Options());
  ~Scheduler();  ///< shutdown(/*drain=*/true).

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Validates and enqueues; blocks while the queue is at capacity.
  /// Throws ContractError on an invalid spec or after shutdown began.
  JobId submit(const JobSpec& spec);

  /// Non-blocking admission: like submit() but returns nullopt instead of
  /// blocking when the queue is at capacity -- the server turns that into
  /// an explicit retryable "busy" reply rather than a hung connection.
  std::optional<JobId> try_submit(const JobSpec& spec);

  /// Attaches a static cluster (must outlive the scheduler; wire up before
  /// serving, not mid-flight): enables the two-level distributed solution
  /// cache and remote subtree dispatch for coordinator jobs. Null detaches.
  void set_cluster(Cluster* cluster);
  Cluster* cluster() const { return cluster_; }
  DistributedCache* dist_cache() const { return dist_cache_.get(); }
  const std::string& checkpoint_dir() const { return options_.checkpoint_dir; }

  /// Cancels a queued job outright or requests cooperative cancellation of
  /// a running one; false when the job is unknown or already terminal.
  bool cancel(JobId id);

  /// Throws ContractError for unknown ids.
  JobStatus status(JobId id) const;

  /// Blocks until the job is terminal, then returns its result.
  JobResult wait(JobId id);

  SchedulerStats stats() const;
  SolutionCache& cache() { return *cache_; }

  /// Coordinator failover: scans checkpoint_dir for orphaned job ledgers
  /// (left by a crashed coordinator) and resubmits their specs, which
  /// resume from the journaled per-subtree tokens. Ledgers owned by this
  /// scheduler's currently-running jobs are never adopted; ledgers whose
  /// recorded owner is another cluster member are only adopted when that
  /// member is down (or `force` is set). Returns the number of jobs
  /// resubmitted.
  std::size_t adopt_orphaned_jobs(bool force = false);

  /// Stops the pool. drain=true (the default, and what the destructor
  /// does) lets queued jobs run to completion first; drain=false cancels
  /// the backlog and only finishes the jobs already running. With
  /// interrupt_running=true, running jobs are additionally asked to stop
  /// cooperatively (checkpointing searches snapshot first) and finish as
  /// kCancelled with their best-so-far attached -- the daemon's
  /// SIGTERM/SIGINT path. Idempotent; concurrent callers block until the
  /// pool is down.
  void shutdown(bool drain = true, bool interrupt_running = false);

 private:
  struct JobRecord;
  class ResourcePool;
  class WorkerState;

  void worker_loop(int worker_index);
  void monitor_loop();
  void execute(WorkerState& state, JobRecord& record);
  std::shared_ptr<JobRecord> find(JobId id) const;
  void finish(JobRecord& record, JobResult result, JobStatus status);
  void release_ledger(const std::string& path);

  Options options_;
  std::unique_ptr<SolutionCache> cache_;
  std::unique_ptr<ResourcePool> pool_;
  std::unique_ptr<JobQueue> queue_;
  Cluster* cluster_ = nullptr;
  std::unique_ptr<DistributedCache> dist_cache_;

  mutable std::mutex mu_;
  std::condition_variable terminal_cv_;   ///< Signalled on any job finish.
  std::condition_variable monitor_cv_;
  std::map<JobId, std::shared_ptr<JobRecord>> jobs_;
  /// Min-heap of (expiry, id) served by the monitor thread.
  std::priority_queue<std::pair<std::chrono::steady_clock::time_point, JobId>,
                      std::vector<std::pair<std::chrono::steady_clock::time_point, JobId>>,
                      std::greater<>>
      deadlines_;
  JobId next_id_ = 1;
  bool accepting_ = true;
  bool monitor_stop_ = false;

  std::mutex shutdown_mu_;  ///< Serializes shutdown(); taken before mu_.
  bool stopped_ = false;    ///< Guarded by shutdown_mu_.

  std::mutex ledger_mu_;
  /// Ledger paths of coordinator jobs currently running here -- never
  /// candidates for adoption (they are not orphaned).
  std::vector<std::string> active_ledgers_;

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> jobs_adopted_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::size_t> running_{0};

  std::vector<std::thread> workers_;
  std::thread monitor_;
};

}  // namespace svtox::svc
