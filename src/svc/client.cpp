#include "svc/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/conn.hpp"
#include "net/frame.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace svtox::svc {

namespace {

int connect_unix(const std::string& socket_path) {
  SVTOX_FAIL_POINT("client_connect");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw ContractError("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error(ErrorCode::kIo, "cannot create unix socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw Error(ErrorCode::kIo, "cannot connect to svtoxd at " + socket_path +
                                    ": " + what + " (is the daemon running?)");
  }
  return fd;
}

/// Throws when the daemon replied ok=false.
const Json& check_ok(const Json& reply) {
  const Json* ok = reply.get("ok");
  if (ok == nullptr || !ok->as_bool(false)) {
    const Json* error = reply.get("error");
    const Json* code = reply.get("error_code");
    std::string what = "svtoxd error";
    if (code != nullptr && code->is_string()) {
      what += " [" + code->as_string() + "]";
    }
    what += ": " + (error != nullptr ? error->as_string() : reply.dump());
    throw ContractError(what);
  }
  return reply;
}

constexpr std::string_view kTcpPrefix = "tcp://";

}  // namespace

int Client::connect_fd() const {
  if (tcp_) {
    SVTOX_FAIL_POINT("client_connect");
    return net::connect_tcp(tcp_host_, tcp_port_, options_.connect_timeout_s);
  }
  return connect_unix(address_);
}

Client::Client(const std::string& address, const ClientOptions& options)
    : options_(options),
      address_(address),
      jitter_(static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count())) {
  if (address_.rfind(kTcpPrefix, 0) == 0) {
    tcp_ = true;
    const net::TcpAddress parsed =
        net::parse_tcp_address(address_.substr(kTcpPrefix.size()));
    tcp_host_ = parsed.host;
    tcp_port_ = parsed.port;
  }
  const int attempts = std::max(1, options_.max_attempts);
  const Deadline deadline(options_.total_deadline_s > 0.0
                              ? options_.total_deadline_s
                              : 1e18);
  for (int attempt = 0;; ++attempt) {
    try {
      fd_ = connect_fd();
      return;
    } catch (const Error&) {
      if (attempt + 1 >= attempts || deadline.remaining() <= 0.0) throw;
      backoff_sleep(attempt, deadline.remaining());
    }
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::drop_connection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();  // a partial reply from a dead connection is garbage
}

void Client::backoff_sleep(int attempt, double cap_s) {
  double delay = options_.backoff_initial_s;
  for (int i = 0; i < attempt && delay < options_.backoff_max_s; ++i) delay *= 2.0;
  delay = std::min(delay, options_.backoff_max_s);
  // Jitter in [0.5, 1.0]x so a fleet of clients does not reconnect in
  // lockstep against a restarting daemon.
  delay *= 0.5 + 0.5 * jitter_.next_double();
  if (cap_s >= 0.0) delay = std::min(delay, cap_s);
  if (delay <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

void Client::send_request(const std::string& payload) {
  SVTOX_FAIL_POINT("client_send");
  std::string wire;
  if (tcp_) {
    net::encode_frame(wire, payload);
  } else {
    wire = payload + "\n";
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(ErrorCode::kIo, "svtoxd connection lost while sending");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Json Client::read_reply() {
  char chunk[4096];
  const Deadline deadline(options_.request_timeout_s > 0.0
                              ? options_.request_timeout_s
                              : 1e18);
  for (;;) {
    if (tcp_) {
      // Oversized headers throw Error(kParse): the stream is torn and the
      // caller drops the connection.
      std::string payload;
      if (net::extract_frame(pending_, payload, net::kMaxReplyFrameBytes)) {
        return Json::parse(payload);
      }
    } else {
      const std::size_t newline = pending_.find('\n');
      if (newline != std::string::npos) {
        const std::string reply = pending_.substr(0, newline);
        pending_.erase(0, newline + 1);
        return Json::parse(reply);
      }
    }
    SVTOX_FAIL_POINT("client_recv");
    if (options_.request_timeout_s > 0.0) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const double remaining = deadline.remaining();
      if (remaining <= 0.0) {
        throw Error(ErrorCode::kTimeout, "svtoxd reply timed out");
      }
      const int timeout_ms =
          static_cast<int>(std::min(remaining * 1e3 + 1.0, 2147483000.0));
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw Error(ErrorCode::kIo, "svtoxd connection lost while waiting");
      }
      if (ready == 0) {
        throw Error(ErrorCode::kTimeout, "svtoxd reply timed out");
      }
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error(ErrorCode::kIo, "svtoxd connection closed before replying");
    pending_.append(chunk, static_cast<std::size_t>(n));
  }
}

Json Client::request(const Json& request_json) {
  const std::string payload = request_json.dump();
  const int attempts = std::max(1, options_.max_attempts);
  const Deadline deadline(options_.total_deadline_s > 0.0
                              ? options_.total_deadline_s
                              : 1e18);
  for (int attempt = 0;; ++attempt) {
    try {
      if (fd_ < 0) {
        pending_.clear();
        fd_ = connect_fd();
      }
      send_request(payload);
      return read_reply();
    } catch (const Error& e) {
      drop_connection();
      // Only transport loss retries; a timeout's request may still be
      // executing server-side, so resending it is the caller's call.
      if (e.code() != ErrorCode::kIo || attempt + 1 >= attempts ||
          deadline.remaining() <= 0.0) {
        throw;
      }
      backoff_sleep(attempt, deadline.remaining());
    }
  }
}

std::uint64_t Client::submit(const JobSpec& spec) {
  Json request_json = job_spec_to_json(spec);
  request_json.set("cmd", "submit");
  const int attempts = std::max(1, options_.max_attempts);
  for (int attempt = 0;; ++attempt) {
    const Json reply = request(request_json);
    // Admission control: a daemon at capacity says so instead of hanging;
    // back off and retry like any other transient condition.
    const Json* code = reply.get("error_code");
    if (code != nullptr && code->is_string() && code->as_string() == "busy" &&
        attempt + 1 < attempts) {
      backoff_sleep(attempt);
      continue;
    }
    check_ok(reply);
    const Json* job = reply.get("job");
    if (job == nullptr) throw ContractError("svtoxd submit reply missing 'job'");
    return static_cast<std::uint64_t>(job->as_int());
  }
}

std::string Client::status(std::uint64_t job) {
  Json request_json = Json::object();
  request_json.set("cmd", "status");
  request_json.set("job", job);
  const Json reply = check_ok(request(request_json));
  const Json* status = reply.get("status");
  return status != nullptr ? status->as_string() : "?";
}

JobResult Client::result(std::uint64_t job, bool include_solution) {
  Json request_json = Json::object();
  request_json.set("cmd", "result");
  request_json.set("job", job);
  if (!include_solution) request_json.set("solution", false);
  return job_result_from_json(check_ok(request(request_json)));
}

bool Client::cancel(std::uint64_t job) {
  Json request_json = Json::object();
  request_json.set("cmd", "cancel");
  request_json.set("job", job);
  const Json reply = check_ok(request(request_json));
  const Json* cancelled = reply.get("cancelled");
  return cancelled != nullptr && cancelled->as_bool(false);
}

Json Client::stats() {
  Json request_json = Json::object();
  request_json.set("cmd", "stats");
  return check_ok(request(request_json));
}

void Client::shutdown(bool drain) {
  Json request_json = Json::object();
  request_json.set("cmd", "shutdown");
  request_json.set("drain", drain);
  check_ok(request(request_json));
}

bool Client::ping(const std::string& address) {
  try {
    int fd;
    if (address.rfind(kTcpPrefix, 0) == 0) {
      const net::TcpAddress parsed =
          net::parse_tcp_address(address.substr(kTcpPrefix.size()));
      fd = net::connect_tcp(parsed.host, parsed.port);
    } else {
      fd = connect_unix(address);
    }
    ::close(fd);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace svtox::svc
