#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace svtox::svc {

namespace {

int connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    throw ContractError("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw ContractError("cannot create unix socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd);
    throw ContractError("cannot connect to svtoxd at " + socket_path + ": " + what +
                        " (is the daemon running?)");
  }
  return fd;
}

/// Throws when the daemon replied ok=false.
const Json& check_ok(const Json& reply) {
  const Json* ok = reply.get("ok");
  if (ok == nullptr || !ok->as_bool(false)) {
    const Json* error = reply.get("error");
    throw ContractError("svtoxd error: " +
                        (error != nullptr ? error->as_string() : reply.dump()));
  }
  return reply;
}

}  // namespace

Client::Client(const std::string& socket_path) : fd_(connect_unix(socket_path)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Json Client::request(const Json& request_json) {
  const std::string line = request_json.dump() + "\n";
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ContractError("svtoxd connection lost while sending");
    }
    sent += static_cast<std::size_t>(n);
  }
  char chunk[4096];
  for (;;) {
    const std::size_t newline = pending_.find('\n');
    if (newline != std::string::npos) {
      const std::string reply = pending_.substr(0, newline);
      pending_.erase(0, newline + 1);
      return Json::parse(reply);
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw ContractError("svtoxd connection closed before replying");
    pending_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::uint64_t Client::submit(const JobSpec& spec) {
  Json request_json = job_spec_to_json(spec);
  request_json.set("cmd", "submit");
  const Json reply = check_ok(request(request_json));
  const Json* job = reply.get("job");
  if (job == nullptr) throw ContractError("svtoxd submit reply missing 'job'");
  return static_cast<std::uint64_t>(job->as_int());
}

std::string Client::status(std::uint64_t job) {
  Json request_json = Json::object();
  request_json.set("cmd", "status");
  request_json.set("job", job);
  const Json reply = check_ok(request(request_json));
  const Json* status = reply.get("status");
  return status != nullptr ? status->as_string() : "?";
}

JobResult Client::result(std::uint64_t job, bool include_solution) {
  Json request_json = Json::object();
  request_json.set("cmd", "result");
  request_json.set("job", job);
  if (!include_solution) request_json.set("solution", false);
  return job_result_from_json(check_ok(request(request_json)));
}

bool Client::cancel(std::uint64_t job) {
  Json request_json = Json::object();
  request_json.set("cmd", "cancel");
  request_json.set("job", job);
  const Json reply = check_ok(request(request_json));
  const Json* cancelled = reply.get("cancelled");
  return cancelled != nullptr && cancelled->as_bool(false);
}

Json Client::stats() {
  Json request_json = Json::object();
  request_json.set("cmd", "stats");
  return check_ok(request(request_json));
}

void Client::shutdown(bool drain) {
  Json request_json = Json::object();
  request_json.set("cmd", "shutdown");
  request_json.set("drain", drain);
  check_ok(request(request_json));
}

bool Client::ping(const std::string& socket_path) {
  try {
    const int fd = connect_unix(socket_path);
    ::close(fd);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace svtox::svc
