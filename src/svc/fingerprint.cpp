#include "svc/fingerprint.hpp"

#include <cstring>

namespace svtox::svc {

Fnv& Fnv::bytes(const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash_ ^= p[i];
    hash_ *= 1099511628211ULL;
  }
  return *this;
}

Fnv& Fnv::u64(std::uint64_t value) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(value >> (8 * i));
  return bytes(buf, sizeof buf);
}

Fnv& Fnv::f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return u64(bits);
}

Fnv& Fnv::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

std::string hex64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::uint64_t fingerprint_library(const liberty::Library& library) {
  const model::TechParams& t = library.tech();
  Fnv h;
  h.str("svtox_library_v1");
  h.f64(t.vdd_volts).f64(t.temp_kelvin);
  h.f64(t.isub_n_low).f64(t.isub_p_low).f64(t.vt_ratio_n).f64(t.vt_ratio_p);
  h.f64(t.isub_vds_zero_factor);
  for (const double f : t.stack_factor) h.f64(f);
  h.f64(t.igate_n_thin).f64(t.igate_p_ratio).f64(t.tox_ratio);
  h.f64(t.igate_reduced_factor).f64(t.edt_factor);
  h.f64(t.r_vt_factor).f64(t.r_tox_factor).f64(t.series_other_weight);
  h.f64(t.r_unit_kohm).f64(t.pmos_r_mult).f64(t.stack_upsize_slope);
  h.f64(t.cin_ff_per_unit_w).f64(t.cout_self_ff).f64(t.wire_ff_per_fanout);
  h.f64(t.slew_derate).f64(t.output_slew_factor);
  h.f64(t.default_pi_slew_ps).f64(t.default_po_load_ff);

  const liberty::LibraryOptions& o = library.options();
  h.boolean(o.variant_options.four_point);
  h.boolean(o.variant_options.uniform_stack);
  h.boolean(o.variant_options.vt_only);
  h.u64(o.slew_axis_ps.size());
  for (const double s : o.slew_axis_ps) h.f64(s);
  h.u64(o.load_axis_ff.size());
  for (const double l : o.load_axis_ff) h.f64(l);
  h.u64(o.cell_names.size());
  for (const std::string& name : o.cell_names) h.str(name);
  return h.value();
}

std::uint64_t fingerprint_netlist(const netlist::Netlist& netlist) {
  Fnv h;
  h.str("svtox_netlist_v1");
  h.str(netlist.name());
  h.u64(static_cast<std::uint64_t>(netlist.num_signals()));
  for (int s = 0; s < netlist.num_signals(); ++s) h.str(netlist.signal_name(s));
  h.u64(netlist.primary_inputs().size());
  for (const int pi : netlist.primary_inputs()) h.i64(pi);
  h.u64(netlist.primary_outputs().size());
  for (const int po : netlist.primary_outputs()) h.i64(po);
  h.u64(netlist.flip_flops().size());
  for (const netlist::FlipFlop& ff : netlist.flip_flops()) {
    h.str(ff.name).i64(ff.d).i64(ff.q);
  }
  h.u64(netlist.gates().size());
  for (const netlist::Gate& gate : netlist.gates()) {
    h.str(gate.name);
    // The archetype name, not the library index, so the fingerprint does
    // not depend on cell enumeration order.
    h.str(netlist.library().cell_at(gate.cell_index).name());
    h.u64(gate.fanins.size());
    for (const int fanin : gate.fanins) h.i64(fanin);
    h.i64(gate.output);
  }
  return h.value();
}

std::string cache_key(std::uint64_t library_fp, std::uint64_t netlist_fp,
                      const RunKnobs& knobs) {
  Fnv h;
  h.str("svtox_run_v2");  // v2: max_leaves joined the knob set
  h.str(knobs.method);
  h.f64(knobs.penalty_fraction);
  h.f64(knobs.time_limit_s);
  h.i64(knobs.random_vectors);
  h.u64(knobs.seed);
  h.i64(knobs.search_threads);
  h.u64(knobs.max_leaves);
  // Fed only when set, so every pre-existing flat key (and the disk cache
  // built from them) is unchanged.
  if (knobs.subtrees != 0 || !knobs.subtree_prefix.empty()) {
    h.str("dist");
    h.i64(knobs.subtrees);
    h.str(knobs.subtree_prefix);
  }
  if (!knobs.pinned_inputs.empty() || !knobs.boundary_timing.empty()) {
    h.str("hier");
    h.str(knobs.pinned_inputs);
    h.str(knobs.boundary_timing);
  }
  return hex64(library_fp) + "." + hex64(netlist_fp) + "." + hex64(h.value());
}

}  // namespace svtox::svc
