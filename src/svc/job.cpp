#include "svc/job.hpp"

#include <stdexcept>

#include "util/error.hpp"

namespace svtox::svc {

namespace {

double number_field(const Json& json, std::string_view key, double fallback) {
  const Json* value = json.get(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) {
    throw ContractError("job field '" + std::string(key) + "' must be a number");
  }
  return value->as_number();
}

bool bool_field(const Json& json, std::string_view key, bool fallback) {
  const Json* value = json.get(key);
  if (value == nullptr) return fallback;
  if (!value->is_bool()) {
    throw ContractError("job field '" + std::string(key) + "' must be a boolean");
  }
  return value->as_bool();
}

std::string string_field(const Json& json, std::string_view key,
                         const std::string& fallback) {
  const Json* value = json.get(key);
  if (value == nullptr) return fallback;
  if (!value->is_string()) {
    throw ContractError("job field '" + std::string(key) + "' must be a string");
  }
  return value->as_string();
}

bool valid_method(const std::string& name) {
  return name == "average" || name == "state" || name == "vtstate" ||
         name == "heu1" || name == "heu2" || name == "exact";
}

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

JobSpec job_spec_from_json(const Json& json) {
  if (!json.is_object()) throw ContractError("job spec must be a JSON object");
  static const char* kKnown[] = {
      "circuit", "bench", "bench_text", "nitrided", "two_point", "uniform_stack", "vt_only",
      "method", "penalty", "time_limit", "vectors", "seed", "threads",
      "max_leaves", "subtrees", "subtree_prefix", "resume_text",
      "pins", "boundary",
      "priority", "deadline", "cache", "retries", "label"};
  for (const auto& [key, value] : json.as_object()) {
    (void)value;
    bool known = false;
    for (const char* name : kKnown) known = known || key == name;
    if (!known) throw ContractError("unknown job field '" + key + "'");
  }

  JobSpec spec;
  spec.circuit = string_field(json, "circuit", "");
  spec.bench_path = string_field(json, "bench", "");
  spec.bench_text = string_field(json, "bench_text", "");
  spec.nitrided = bool_field(json, "nitrided", false);
  spec.two_point = bool_field(json, "two_point", false);
  spec.uniform_stack = bool_field(json, "uniform_stack", false);
  spec.vt_only = bool_field(json, "vt_only", false);
  spec.method = string_field(json, "method", "heu1");
  spec.penalty_percent = number_field(json, "penalty", 5.0);
  spec.time_limit_s = number_field(json, "time_limit", 5.0);
  spec.random_vectors = static_cast<int>(number_field(json, "vectors", 10000));
  spec.seed = static_cast<std::uint64_t>(number_field(json, "seed", 2004));
  spec.search_threads = static_cast<int>(number_field(json, "threads", 1));
  spec.max_leaves = static_cast<std::uint64_t>(number_field(json, "max_leaves", 0));
  spec.subtrees = static_cast<int>(number_field(json, "subtrees", 0));
  spec.subtree_prefix = string_field(json, "subtree_prefix", "");
  spec.resume_text = string_field(json, "resume_text", "");
  spec.pinned_inputs = string_field(json, "pins", "");
  spec.boundary_timing = string_field(json, "boundary", "");
  spec.priority = static_cast<int>(number_field(json, "priority", 0));
  spec.deadline_s = number_field(json, "deadline", 0.0);
  spec.use_cache = bool_field(json, "cache", true);
  spec.retries = static_cast<int>(number_field(json, "retries", 0));
  spec.label = string_field(json, "label", "");

  validate_job_spec(spec);
  return spec;
}

void validate_job_spec(const JobSpec& spec) {
  const int sources = (spec.circuit.empty() ? 0 : 1) + (spec.bench_path.empty() ? 0 : 1) +
                      (spec.bench_text.empty() ? 0 : 1);
  if (sources != 1) {
    throw ContractError(
        "job spec needs exactly one of 'circuit', 'bench' or 'bench_text'");
  }
  if (!valid_method(spec.method)) {
    throw ContractError("unknown method '" + spec.method +
                        "' (want average|state|vtstate|heu1|heu2|exact)");
  }
  if (spec.penalty_percent < 0.0 || spec.penalty_percent > 100.0) {
    throw ContractError("penalty must be in [0, 100] percent");
  }
  if (spec.time_limit_s < 0.0 || spec.deadline_s < 0.0) {
    throw ContractError("time_limit/deadline must be non-negative");
  }
  if (spec.random_vectors <= 0) throw ContractError("vectors must be positive");
  if (spec.retries < 0 || spec.retries > 10) {
    throw ContractError("retries must be in [0, 10]");
  }
  const bool tree_method = spec.method == "state" || spec.method == "vtstate" ||
                           spec.method == "heu2" || spec.method == "exact";
  if (spec.subtrees != 0) {
    if (spec.subtrees < 2 || spec.subtrees > 1024) {
      throw ContractError("subtrees must be in [2, 1024] (or 0 for flat)");
    }
    if (!tree_method) {
      throw ContractError(
          "subtrees requires a tree-search method (state|vtstate|heu2|exact)");
    }
    if (spec.max_leaves == 0 && spec.method != "exact") {
      throw ContractError(
          "distributed " + spec.method +
          " needs a max_leaves budget (wall-clock budgets are not "
          "node-count-reproducible)");
    }
    if (!spec.subtree_prefix.empty()) {
      throw ContractError("subtrees and subtree_prefix are mutually exclusive");
    }
  }
  if (!spec.subtree_prefix.empty()) {
    if (!tree_method) {
      throw ContractError("subtree_prefix requires a tree-search method");
    }
    if (spec.subtree_prefix.size() > 64 ||
        spec.subtree_prefix.find_first_not_of("01") != std::string::npos) {
      throw ContractError("subtree_prefix must be 1-64 chars of '0'/'1'");
    }
  }
  if (!spec.resume_text.empty() && !tree_method) {
    throw ContractError("resume_text requires a tree-search method");
  }
  if (!spec.pinned_inputs.empty()) {
    if (spec.pinned_inputs.find_first_not_of("01x") != std::string::npos) {
      throw ContractError("pins must be '0'/'1'/'x' chars, one per control point");
    }
    if (spec.subtrees != 0 || !spec.subtree_prefix.empty() ||
        !spec.resume_text.empty()) {
      throw ContractError(
          "pins cannot combine with the distributed subtree knobs "
          "(a pinned search is serial)");
    }
    if (spec.method == "average") {
      throw ContractError("pins require a method that searches the state tree");
    }
  }
  if (!spec.boundary_timing.empty()) {
    parse_boundary_timing(spec.boundary_timing);  // shape check; throws
  }
}

Json job_spec_to_json(const JobSpec& spec) {
  Json json = Json::object();
  if (!spec.circuit.empty()) json.set("circuit", spec.circuit);
  if (!spec.bench_path.empty()) json.set("bench", spec.bench_path);
  if (!spec.bench_text.empty()) json.set("bench_text", spec.bench_text);
  if (spec.nitrided) json.set("nitrided", true);
  if (spec.two_point) json.set("two_point", true);
  if (spec.uniform_stack) json.set("uniform_stack", true);
  if (spec.vt_only) json.set("vt_only", true);
  json.set("method", spec.method);
  json.set("penalty", spec.penalty_percent);
  json.set("time_limit", spec.time_limit_s);
  json.set("vectors", spec.random_vectors);
  json.set("seed", spec.seed);
  json.set("threads", spec.search_threads);
  if (spec.max_leaves != 0) json.set("max_leaves", spec.max_leaves);
  if (spec.subtrees != 0) json.set("subtrees", spec.subtrees);
  if (!spec.subtree_prefix.empty()) json.set("subtree_prefix", spec.subtree_prefix);
  if (!spec.resume_text.empty()) json.set("resume_text", spec.resume_text);
  if (!spec.pinned_inputs.empty()) json.set("pins", spec.pinned_inputs);
  if (!spec.boundary_timing.empty()) json.set("boundary", spec.boundary_timing);
  if (spec.priority != 0) json.set("priority", spec.priority);
  if (spec.deadline_s > 0.0) json.set("deadline", spec.deadline_s);
  if (!spec.use_cache) json.set("cache", false);
  if (spec.retries != 0) json.set("retries", spec.retries);
  if (!spec.label.empty()) json.set("label", spec.label);
  return json;
}

std::vector<sim::Tri> parse_pinned_inputs(const std::string& pins) {
  std::vector<sim::Tri> out;
  out.reserve(pins.size());
  for (const char c : pins) {
    switch (c) {
      case '0': out.push_back(sim::Tri::kZero); break;
      case '1': out.push_back(sim::Tri::kOne); break;
      case 'x': out.push_back(sim::Tri::kX); break;
      default:
        throw ContractError("pins must be '0'/'1'/'x' chars, one per control point");
    }
  }
  return out;
}

sta::BoundaryTiming parse_boundary_timing(const std::string& text) {
  sta::BoundaryTiming boundary;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string pair =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t colon = pair.find(':');
    if (colon == std::string::npos) {
      throw ContractError("boundary timing wants 'arrival:slew' pairs, got '" + pair + "'");
    }
    sta::BoundaryTiming::Point point;
    try {
      std::size_t used = 0;
      point.arrival_ps = std::stod(pair.substr(0, colon), &used);
      if (used != colon) throw std::invalid_argument(pair);
      point.slew_ps = std::stod(pair.substr(colon + 1), &used);
      if (used != pair.size() - colon - 1) throw std::invalid_argument(pair);
    } catch (const std::exception&) {
      throw ContractError("boundary timing pair '" + pair + "' is not numeric");
    }
    boundary.points.push_back(point);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return boundary;
}

Json job_result_to_json(const JobResult& result, bool include_solution) {
  Json json = Json::object();
  json.set("status", to_string(result.status));
  if (!result.error.empty()) json.set("error", result.error);
  if (!result.error_code.empty()) json.set("error_code", result.error_code);
  json.set("circuit", result.circuit);
  json.set("gates", result.gates);
  json.set("method", result.method);
  json.set("penalty", result.penalty_percent);
  json.set("leakage_ua", result.leakage_ua);
  json.set("reduction_x", result.reduction_x);
  json.set("delay_ps", result.delay_ps);
  json.set("runtime_s", result.runtime_s);
  json.set("states", result.states_explored);
  json.set("cache_hit", result.cache_hit);
  if (result.interrupted) json.set("interrupted", true);
  if (!result.label.empty()) json.set("label", result.label);
  if (include_solution && !result.solution_text.empty()) {
    json.set("solution", result.solution_text);
  }
  if (include_solution && !result.checkpoint_text.empty()) {
    json.set("checkpoint", result.checkpoint_text);
  }
  return json;
}

JobResult job_result_from_json(const Json& json) {
  JobResult result;
  const std::string status = string_field(json, "status", "done");
  if (status == "queued") result.status = JobStatus::kQueued;
  else if (status == "running") result.status = JobStatus::kRunning;
  else if (status == "done") result.status = JobStatus::kDone;
  else if (status == "failed") result.status = JobStatus::kFailed;
  else if (status == "cancelled") result.status = JobStatus::kCancelled;
  else throw ContractError("unknown job status '" + status + "'");
  result.error = string_field(json, "error", "");
  result.error_code = string_field(json, "error_code", "");
  result.circuit = string_field(json, "circuit", "");
  result.gates = static_cast<int>(number_field(json, "gates", 0.0));
  result.method = string_field(json, "method", "");
  result.penalty_percent = number_field(json, "penalty", 0.0);
  result.leakage_ua = number_field(json, "leakage_ua", 0.0);
  result.reduction_x = number_field(json, "reduction_x", 0.0);
  result.delay_ps = number_field(json, "delay_ps", 0.0);
  result.runtime_s = number_field(json, "runtime_s", 0.0);
  result.states_explored =
      static_cast<std::uint64_t>(number_field(json, "states", 0.0));
  result.cache_hit = bool_field(json, "cache_hit", false);
  result.interrupted = bool_field(json, "interrupted", false);
  result.solution_text = string_field(json, "solution", "");
  result.checkpoint_text = string_field(json, "checkpoint", "");
  result.label = string_field(json, "label", "");
  return result;
}

}  // namespace svtox::svc
