// Two-level distributed solution cache: the local sharded SolutionCache in
// front of a consistent-hash ring of peers, with optional replication.
//
// Read path (fetch_or_lock):
//   1. Local cache first. A local hit never touches the network; a local
//      miss makes this node the *local* owner (local dedup preserved).
//   2. If the ring assigns the key to a peer, ask the owner shard with a
//      blocking cache_fetch_or_lock RPC. The owner's SolutionCache applies
//      its own inflight dedup, so N identical concurrent jobs anywhere in
//      the cluster collapse onto ONE solve: every other node parks inside
//      this RPC until the owner's entry is published.
//   3. When the owner is down or the RPC fails, the call *walks the
//      successor chain* (ring().owners(key, 1 + replicas)): with
//      --cache-replicas N a crashed primary's key is usually already
//      replicated on the next N members, so the fetch is served there
//      instead of degrading. Only when every owner in the chain is
//      unreachable does the node fall back to a local solve.
//   4. A remote hit is published into the local cache (fills the local LRU
//      and wakes local waiters) and returned. A remote miss makes this
//      node the *remote* owner too -- it must publish/abandon back to the
//      member that granted the lock.
//
// Write path (publish): the result lands in the local cache, then in the
// member that granted the remote lock (waking its parked fetchers), then
// best-effort in every other owner in the successor chain (replication).
//
// Failure model: any peer error degrades to local-only behaviour (the
// local miss stands, the job is solved here) and bumps `peer_failures`.
// The cache can therefore only ever cost a duplicate solve, never return
// a wrong or stale result. The pre-replication park hazard -- a borrower
// crashing while holding a remote lock left the owner's inflight marker
// parking later fetches forever -- is now bounded by
// ClusterOptions::blocking_wait_s on both sides of the RPC: waiters time
// out into an additional (duplicate) solve instead of hanging.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "svc/cluster.hpp"
#include "svc/solution_cache.hpp"

namespace svtox::svc {

struct DistCacheStats {
  std::uint64_t remote_hits = 0;       ///< Served by a peer's shard.
  std::uint64_t remote_misses = 0;     ///< Became cluster-wide owner.
  std::uint64_t remote_publishes = 0;  ///< Results pushed to owner shards.
  std::uint64_t remote_abandons = 0;
  std::uint64_t peer_failures = 0;        ///< RPCs that failed outright.
  std::uint64_t replica_fallbacks = 0;    ///< Fetches served past the primary.
};

class DistributedCache {
 public:
  /// Both referents must outlive the cache. Replication degree and wait
  /// bounds come from cluster.options().
  DistributedCache(SolutionCache& local, Cluster& cluster)
      : local_(local), cluster_(cluster) {}

  /// SolutionCache::fetch_or_lock semantics, cluster-wide. Blocks on both
  /// local and remote inflight solves of the same key, bounded by
  /// ClusterOptions::blocking_wait_s for the remote side.
  std::optional<JobResult> fetch_or_lock(const std::string& key);

  /// Publishes locally, then to the member that granted the remote lock,
  /// then (best-effort) to the remaining owners in the successor chain.
  void publish(const std::string& key, const JobResult& result);
  void abandon(const std::string& key);

  DistCacheStats stats() const;

 private:
  std::optional<std::string> take_remote_ownership_back(const std::string& key);
  std::size_t owner_count() const;

  SolutionCache& local_;
  Cluster& cluster_;

  std::mutex mu_;
  /// key -> the member whose shard granted this node the in-flight lock
  /// (the publish/abandon obligation is to *that* member, even if the
  /// ring has changed since).
  std::unordered_map<std::string, std::string> remote_owned_;

  std::atomic<std::uint64_t> remote_hits_{0};
  std::atomic<std::uint64_t> remote_misses_{0};
  std::atomic<std::uint64_t> remote_publishes_{0};
  std::atomic<std::uint64_t> remote_abandons_{0};
  std::atomic<std::uint64_t> peer_failures_{0};
  std::atomic<std::uint64_t> replica_fallbacks_{0};
};

}  // namespace svtox::svc
