// Two-level distributed solution cache: the local sharded SolutionCache in
// front of a consistent-hash ring of peers.
//
// Read path (fetch_or_lock):
//   1. Local cache first. A local hit never touches the network; a local
//      miss makes this node the *local* owner (local dedup preserved).
//   2. If the ring assigns the key to a peer, ask that owner shard with a
//      blocking cache_fetch_or_lock RPC. The owner's SolutionCache applies
//      its own inflight dedup, so N identical concurrent jobs anywhere in
//      the cluster collapse onto ONE solve: every other node parks inside
//      this RPC until the owner's entry is published.
//   3. A remote hit is published into the local cache (fills the local LRU
//      and wakes local waiters) and returned. A remote miss makes this
//      node the *remote* owner too -- it must publish/abandon both levels.
//
// Failure model: any peer error degrades to local-only behaviour (the
// local miss stands, the job is solved here) and bumps `peer_failures`.
// The cache can therefore only ever cost a duplicate solve, never return
// a wrong or stale result. Known limitation (documented in DESIGN.md): a
// node that crashes while holding a *remote* ownership leaves the owner's
// inflight marker behind, parking later fetches for that one key until
// the owner daemon restarts.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>

#include "svc/cluster.hpp"
#include "svc/solution_cache.hpp"

namespace svtox::svc {

struct DistCacheStats {
  std::uint64_t remote_hits = 0;       ///< Served by a peer's shard.
  std::uint64_t remote_misses = 0;     ///< Became cluster-wide owner.
  std::uint64_t remote_publishes = 0;  ///< Results pushed to owner shards.
  std::uint64_t remote_abandons = 0;
  std::uint64_t peer_failures = 0;     ///< RPCs that degraded to local-only.
};

class DistributedCache {
 public:
  /// Both referents must outlive the cache.
  DistributedCache(SolutionCache& local, Cluster& cluster)
      : local_(local), cluster_(cluster) {}

  /// SolutionCache::fetch_or_lock semantics, cluster-wide. Blocks on both
  /// local and remote inflight solves of the same key.
  std::optional<JobResult> fetch_or_lock(const std::string& key);

  /// Publishes locally, then (when this node took remote ownership) to the
  /// ring owner, best-effort.
  void publish(const std::string& key, const JobResult& result);
  void abandon(const std::string& key);

  DistCacheStats stats() const;

 private:
  bool take_remote_ownership_back(const std::string& key);

  SolutionCache& local_;
  Cluster& cluster_;

  std::mutex mu_;
  /// Keys this node owes a publish/abandon to a remote owner shard for.
  std::unordered_set<std::string> remote_owned_;

  std::atomic<std::uint64_t> remote_hits_{0};
  std::atomic<std::uint64_t> remote_misses_{0};
  std::atomic<std::uint64_t> remote_publishes_{0};
  std::atomic<std::uint64_t> remote_abandons_{0};
  std::atomic<std::uint64_t> peer_failures_{0};
};

}  // namespace svtox::svc
