// Job model of the service layer: what a client submits (JobSpec), what it
// gets back (JobResult), and the JSON mapping both travel through -- the
// same encoding is used by the svtoxd wire protocol, `svtox batch`
// manifests, and the solution cache's disk metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim.hpp"
#include "sta/sta.hpp"
#include "svc/json.hpp"

namespace svtox::svc {

/// Lifecycle of a submitted job.
enum class JobStatus {
  kQueued,     ///< Accepted, waiting for a worker.
  kRunning,    ///< Executing on a worker.
  kDone,       ///< Finished (possibly `interrupted` by its deadline).
  kFailed,     ///< Threw (bad circuit name, unreadable bench file, ...).
  kCancelled,  ///< Cancelled before completion (explicitly or by deadline
               ///< expiry while still queued).
};

const char* to_string(JobStatus status);

/// One optimization request. Field names match the JSON wire/manifest keys
/// (penalty is in percent there, mirroring the CLI's --penalty).
struct JobSpec {
  // --- Circuit source: exactly one of the three. -----------------------
  std::string circuit;     ///< Built-in benchmark name (c432 ... alu64).
  std::string bench_path;  ///< ISCAS-85 .bench file on the *server* host.
  /// Inline .bench content, shipped with the job. The hierarchical
  /// optimizer submits its partition cones this way: the resolved netlist
  /// is named by the content hash, so structurally identical cones from
  /// anywhere dedup onto one resource-pool entry and one cache solve.
  std::string bench_text;

  // --- Library build (same knobs as the CLI). --------------------------
  bool nitrided = false;
  bool two_point = false;
  bool uniform_stack = false;
  bool vt_only = false;

  // --- Run. ------------------------------------------------------------
  std::string method = "heu1";  ///< average|state|vtstate|heu1|heu2|exact.
  double penalty_percent = 5.0;
  double time_limit_s = 5.0;
  int random_vectors = 10000;
  std::uint64_t seed = 2004;
  int search_threads = 1;  ///< Intra-search root-split threads.
  /// Deterministic leaf budget for the state search (0 = unlimited);
  /// jobs capped this way reproduce bit-identically across runs and
  /// checkpointed resumes.
  std::uint64_t max_leaves = 0;

  // --- Distributed tree search. ----------------------------------------
  /// When >= 2, the scheduler runs this job as a *coordinator*: it splits
  /// the state tree's top ceil(log2(subtrees)) levels into fixed-prefix
  /// subtree jobs, solves them locally and on the daemon's --peers over
  /// TCP (SearchCheckpoint blobs as migration tokens), and merges the
  /// incumbents deterministically -- the result is a pure function of the
  /// spec, independent of the node count. Requires a tree-splittable
  /// method (state|vtstate|heu2|exact) and, for byte-reproducibility, a
  /// max_leaves budget (exact is inherently deterministic without one).
  int subtrees = 0;
  /// Internal (coordinator -> worker): restricts the search to the subtree
  /// with input_order positions [0, n) pinned to these '0'/'1' chars.
  /// Mutually exclusive with `subtrees`.
  std::string subtree_prefix;
  /// Internal: checkpoint blob the worker seeds/resumes its subtree search
  /// from (the migration token; opt/checkpoint.hpp text format).
  std::string resume_text;

  // --- Boundary-aware cone solve (hierarchical flow). ------------------
  /// One char per control point of the resolved netlist: '0'/'1' pin the
  /// input to that constant (the search never branches on it and the
  /// returned sleep vector carries the value verbatim), 'x' leaves it
  /// free. Empty = no pins. JSON key "pins". Mutually exclusive with the
  /// distributed subtree knobs (pins force a serial search).
  std::string pinned_inputs;
  /// Per-control-point upstream timing seeds as comma-separated
  /// "<arrival_ps>:<slew_ps>" pairs (one per control point, netlist
  /// control-point order); empty = default zero-arrival seeds. JSON key
  /// "boundary". Changes the cone's delay budget, so it is part of the
  /// cache key.
  std::string boundary_timing;

  // --- Service-level. --------------------------------------------------
  int priority = 0;        ///< Higher runs first; FIFO within a priority.
  double deadline_s = 0.0; ///< Wall-clock budget from submission; 0 = none.
  bool use_cache = true;
  /// Transient-failure retry budget for this job: a worker re-runs the job
  /// up to this many extra times when it fails with a retryable
  /// util::Error (io/timeout). Parse/contract failures never retry.
  int retries = 0;
  std::string label;       ///< Echoed in the result; used for output names.
};

/// Sanity-checks a spec (exactly one circuit source, known method, ranges);
/// throws ContractError on violations. Called by both the JSON decoder and
/// Scheduler::submit, so in-process and wire submissions enforce the same
/// contract.
void validate_job_spec(const JobSpec& spec);

/// Parses a spec from a JSON object. Unknown keys are rejected (the service
/// counterpart of the CLI's strict option validation) and the spec is
/// checked via validate_job_spec; throws ContractError on violations.
JobSpec job_spec_from_json(const Json& json);
Json job_spec_to_json(const JobSpec& spec);

/// Decodes JobSpec::pinned_inputs ('0'/'1'/'x' per control point) into the
/// search's typed form; throws ContractError on other characters.
std::vector<sim::Tri> parse_pinned_inputs(const std::string& pins);

/// Decodes JobSpec::boundary_timing ("arrival:slew,arrival:slew,...") into
/// sta::BoundaryTiming; throws ContractError on malformed pairs.
sta::BoundaryTiming parse_boundary_timing(const std::string& text);

/// Outcome of one job.
struct JobResult {
  JobStatus status = JobStatus::kDone;
  std::string error;         ///< For kFailed / kCancelled.
  /// Machine-readable failure class for kFailed: a util::ErrorCode name
  /// ("parse", "io", "corrupt", "timeout", "cancelled"), or "internal" for
  /// other exceptions. Lets clients tell retryable from fatal failures.
  std::string error_code;
  std::string circuit;       ///< Resolved netlist name.
  int gates = 0;             ///< Gate count of the resolved netlist.
  std::string method;
  double penalty_percent = 0.0;
  double leakage_ua = 0.0;
  double reduction_x = 0.0;
  double delay_ps = 0.0;
  double runtime_s = 0.0;    ///< Solve time (the cached value on a hit).
  std::uint64_t states_explored = 0;
  bool cache_hit = false;
  bool interrupted = false;  ///< Best-so-far due to cancel/deadline.
  std::string solution_text; ///< core::write_solution output; empty for
                             ///< the average baseline.
  /// Final SearchCheckpoint blob of a subtree job (spec.subtree_prefix
  /// set). A finished shard synthesizes a tree_done token (fingerprint 0;
  /// the coordinator knows which search it asked for and completes without
  /// a fingerprint check). A cancelled shard instead carries the search's
  /// final on-disk snapshot verbatim -- real fingerprint, frontier path --
  /// which is resume material, not a result.
  std::string checkpoint_text;
  std::string label;
};

/// `include_solution` elides the (possibly large) solution text, for
/// status-style queries.
Json job_result_to_json(const JobResult& result, bool include_solution);
JobResult job_result_from_json(const Json& json);

}  // namespace svtox::svc
