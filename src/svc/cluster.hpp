// Static cluster membership + peer RPC for the distributed daemon.
//
// A cluster is the set of svtoxd TCP addresses named by --peers (including
// this daemon's own --self address). Membership is fixed for the process
// lifetime: there is no gossip or failure detector, because every
// distributed mechanism here (sharded cache reads, subtree dispatch) is an
// *optimization* that degrades to local execution when a peer is
// unreachable -- callers catch Error(kIo)/Error(kTimeout) and fall back.
//
// request() speaks the framed TCP protocol through svc::Client. Quick
// RPCs share one pooled connection per peer (serialized by a mutex);
// calls that may block server-side for a long time -- a cache
// fetch_or_lock parked on another node's inflight solve, a blocking
// `result` -- must pass fresh_connection=true so they do not hold the
// pooled channel hostage.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "svc/client.hpp"
#include "svc/hash_ring.hpp"
#include "svc/json.hpp"

namespace svtox::svc {

struct ClusterOptions {
  /// All member addresses, "host:port". Order does not matter (the ring
  /// is order-independent); the set must match on every node.
  std::vector<std::string> members;
  std::string self;         ///< This daemon's address; must be in members.
  int ring_vnodes = 64;
  double request_timeout_s = 30.0;  ///< Per pooled round trip; 0 = none.
  int connect_attempts = 2;         ///< Client retry budget per request.
  double backoff_initial_s = 0.05;
};

class Cluster {
 public:
  /// Throws ContractError when `self` is not a member or members invalid.
  explicit Cluster(const ClusterOptions& options);

  const std::string& self() const { return options_.self; }
  const std::vector<std::string>& members() const { return ring_.members(); }
  std::size_t size() const { return ring_.size(); }

  /// The ring owner of a cache key. May be self().
  const std::string& owner_of(const std::string& key) const {
    return ring_.owner(key);
  }
  bool is_self(const std::string& member) const { return member == options_.self; }

  /// Every member except self, in the (stable) construction order.
  std::vector<std::string> peers() const;

  /// One round trip to `member`. Throws Error(kIo)/Error(kTimeout) on
  /// transport failure -- the caller decides whether to degrade or retry.
  /// fresh_connection=true uses a throwaway connection (see file comment).
  Json request(const std::string& member, const Json& request_json,
               bool fresh_connection = false);

  /// Options used for ad-hoc Clients that want the cluster's timeouts
  /// (the coordinator's per-peer dispatchers).
  ClientOptions client_options() const;

 private:
  ClusterOptions options_;
  HashRing ring_;

  struct Peer {
    std::mutex mu;                   ///< Serializes pooled round trips.
    std::unique_ptr<Client> client;  ///< Lazily connected, dropped on error.
  };
  std::mutex peers_mu_;  ///< Guards the map, not the per-peer channels.
  std::vector<std::pair<std::string, std::unique_ptr<Peer>>> peers_;

  Peer& peer_slot(const std::string& member);
};

}  // namespace svtox::svc
