// Cluster membership, peer health, and peer RPC for the distributed daemon.
//
// A cluster is the set of svtoxd TCP addresses named by --peers (including
// this daemon's own --self address). Membership is *dynamic*: the member
// set lives in an immutable snapshot (a HashRing) swapped atomically under
// a mutex and stamped with a monotonically increasing epoch, so readers
// grab a consistent ring with one shared_ptr copy and reload() (SIGHUP, a
// `cluster_reload` request, or a peers-file re-read) never blocks RPCs in
// flight. There is still no gossip: every node must be pointed at the same
// peers file / list for the rings to agree, and the epoch only detects
// staleness locally.
//
// Health: when heartbeats are enabled (heartbeat_interval_s > 0), a
// background thread pings every peer over a short-deadline throwaway
// connection. A peer is `up` while its last successful contact is within
// suspect_after_s, `suspect` until down_after_s, and `down` after that.
// Successful *application* RPCs also count as contact, so a busy healthy
// peer never degrades just because pings queue behind real work. request()
// fails fast with Error(kIo) against a `down` peer instead of burning a
// connect timeout -- the heartbeat thread keeps probing it, so the first
// successful ping restores routing. With heartbeats disabled every peer
// reports `up` and request() behaves as before.
//
// request() speaks the framed TCP protocol through svc::Client. Quick
// RPCs share one pooled connection per peer (serialized by a mutex);
// calls that may block server-side for a long time -- a cache
// fetch_or_lock parked on another node's inflight solve, a blocking
// `result` -- must pass fresh_connection=true so they do not hold the
// pooled channel hostage.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/hash_ring.hpp"
#include "svc/json.hpp"

namespace svtox::svc {

enum class PeerHealth { kUp, kSuspect, kDown };

const char* peer_health_name(PeerHealth health);

/// One peer's health as seen by the failure detector, for stats/metrics.
struct PeerHealthSnapshot {
  std::string member;
  PeerHealth health = PeerHealth::kUp;
  double latency_s = 0.0;   ///< EWMA of heartbeat round-trip time.
  double since_ok_s = 0.0;  ///< Seconds since the last successful contact.
  std::uint64_t failures = 0;  ///< Failed contacts since the peer was added.
};

struct ClusterOptions {
  /// All member addresses, "host:port". Order does not matter (the ring
  /// is order-independent); the set must match on every node.
  std::vector<std::string> members;
  std::string self;         ///< This daemon's address; must be in members.
  int ring_vnodes = 64;
  double request_timeout_s = 30.0;  ///< Per pooled round trip; 0 = none.
  int connect_attempts = 2;         ///< Client retry budget per request.
  double backoff_initial_s = 0.05;

  /// Heartbeat cadence; 0 disables the failure detector entirely.
  double heartbeat_interval_s = 0.0;
  double suspect_after_s = 3.0;  ///< No contact for this long -> suspect.
  double down_after_s = 10.0;    ///< ... for this long -> down (routed around).

  /// Extra successor owners each cache key is published to (0 = primary
  /// only). Consumed by DistributedCache.
  int cache_replicas = 0;

  /// Upper bound on how long a remote cache_fetch_or_lock may park on the
  /// owner's in-flight solve before degrading to a local (duplicate)
  /// solve; 0 = wait forever (the pre-replication behaviour). Applied on
  /// both sides: the serving node's cv wait and the calling client's
  /// reply timeout (with slack).
  double blocking_wait_s = 30.0;

  /// Optional peers file for reload_from_file(): one or more addresses
  /// per line, ','/whitespace separated, '#' comments. `self` is added
  /// implicitly when the file omits it.
  std::string peers_file;
};

class Cluster {
 public:
  /// Throws ContractError when `self` is not a member or members invalid.
  explicit Cluster(const ClusterOptions& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const std::string& self() const { return options_.self; }
  const ClusterOptions& options() const { return options_; }

  /// Consistent snapshot of the current ring. Hold the shared_ptr for the
  /// duration of a multi-step routing decision (owner list + RPCs) so a
  /// concurrent reload cannot change the ring underfoot.
  std::shared_ptr<const HashRing> ring() const;

  /// Monotonically increasing membership epoch; bumped by every
  /// successful reload that changed the member set.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  std::vector<std::string> members() const { return ring()->members(); }
  std::size_t size() const { return ring()->size(); }

  /// The ring owner of a cache key. May be self().
  std::string owner_of(const std::string& key) const {
    return ring()->owner(key);
  }
  /// Primary + replica successors for a key (at most `count` distinct
  /// members, in deterministic ring order).
  std::vector<std::string> owners_of(const std::string& key,
                                     std::size_t count) const {
    return ring()->owners(key, count);
  }
  bool is_self(const std::string& member) const { return member == options_.self; }

  /// Every member except self, in the (stable) ring order.
  std::vector<std::string> peers() const;

  /// Replaces the member set. Throws ContractError when `members` is
  /// invalid or drops `self`. Returns true when the set actually changed
  /// (and the epoch was bumped).
  bool reload(std::vector<std::string> members);

  /// Re-reads options().peers_file and applies it via reload(). Throws
  /// Error(kIo) when the file cannot be read, ContractError when its
  /// contents are invalid.
  bool reload_from_file();

  /// Starts the heartbeat thread (no-op when heartbeat_interval_s <= 0 or
  /// already started).
  void start();
  /// Stops the heartbeat thread; idempotent, called by the destructor.
  void stop();

  /// Current health of a member. Self is always up; with heartbeats
  /// disabled every member is up.
  PeerHealth health(const std::string& member) const;

  /// All peers' health, in ring order, for stats/metrics.
  std::vector<PeerHealthSnapshot> health_snapshot() const;

  /// One round trip to `member`. Throws Error(kIo)/Error(kTimeout) on
  /// transport failure -- the caller decides whether to degrade or retry.
  /// Fails fast with Error(kIo) when the member is `down` (heartbeats
  /// keep probing; the first success restores routing).
  /// fresh_connection=true uses a throwaway connection (see file comment);
  /// `fresh_reply_timeout_s` bounds how long such a call may park waiting
  /// for the reply (0 = forever, ignored for pooled connections).
  Json request(const std::string& member, const Json& request_json,
               bool fresh_connection = false,
               double fresh_reply_timeout_s = 0.0);

  /// Options used for ad-hoc Clients that want the cluster's timeouts
  /// (the coordinator's per-peer dispatchers).
  ClientOptions client_options() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct PeerState {
    Clock::time_point last_ok;       ///< Last successful contact (or add time).
    double latency_ema_s = 0.0;
    std::uint64_t failures = 0;
    bool ever_ok = false;
  };

  struct Peer {
    std::mutex mu;                   ///< Serializes pooled round trips.
    std::unique_ptr<Client> client;  ///< Lazily connected, dropped on error.
  };

  Peer& peer_slot(const std::string& member);
  void prune_peer_slots(const std::vector<std::string>& members);
  void heartbeat_loop();
  void ping_peer(const std::string& member);
  void note_contact(const std::string& member, bool ok, double latency_s);
  PeerHealth health_of_state(const PeerState& state, Clock::time_point now) const;

  ClusterOptions options_;

  mutable std::mutex ring_mu_;            ///< Guards the snapshot pointer swap.
  std::shared_ptr<const HashRing> ring_;  ///< Immutable snapshot; never null.
  std::atomic<std::uint64_t> epoch_{1};

  mutable std::mutex health_mu_;
  std::vector<std::pair<std::string, PeerState>> health_;

  std::mutex peers_mu_;  ///< Guards the map, not the per-peer channels.
  std::vector<std::pair<std::string, std::unique_ptr<Peer>>> peers_;

  std::mutex hb_mu_;  ///< Guards hb_stop_ for the cv; thread start/stop.
  std::condition_variable hb_cv_;
  std::thread hb_thread_;
  bool hb_stop_ = false;
  bool hb_running_ = false;
};

}  // namespace svtox::svc
