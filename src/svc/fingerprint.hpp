// Content-addressed identity for the service layer.
//
// The solution cache and the resource pools key on canonical FNV-1a
// fingerprints instead of user-supplied names: a job is identified by what
// it *computes on* (the netlist topology down to signal/gate names, the
// characterized library: tech parameters + variant/axis options) and what
// it *computes* (method, penalty, time budget, seeds, intra-search thread
// count). Two submissions with identical content share one cache entry --
// and one solve, via the cache's inflight dedup -- no matter how they were
// spelled on the command line.
//
// Names (netlist/signal/gate names) are deliberately part of the netlist
// fingerprint: the cached artifact is the solution *text*, which embeds
// them, and byte-identity of that text is the service's contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "liberty/library.hpp"
#include "netlist/netlist.hpp"

namespace svtox::svc {

/// Incremental 64-bit FNV-1a hasher with typed feed helpers. Doubles are
/// hashed by bit pattern (the inputs here are exact configuration values,
/// not computed floats), so the fingerprint is platform-stable for IEEE
/// doubles.
class Fnv {
 public:
  explicit Fnv(std::uint64_t seed = 14695981039346656037ULL) : hash_(seed) {}

  Fnv& bytes(const void* data, std::size_t size);
  Fnv& u64(std::uint64_t value);
  Fnv& i64(std::int64_t value) { return u64(static_cast<std::uint64_t>(value)); }
  Fnv& f64(double value);
  Fnv& boolean(bool value) { return u64(value ? 1 : 0); }
  /// Length-prefixed, so adjacent strings cannot alias ("ab","c" != "a","bc").
  Fnv& str(std::string_view s);

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_;
};

/// 16-hex-digit lowercase rendering of a 64-bit hash.
std::string hex64(std::uint64_t value);

/// Fingerprint of a characterized library: every TechParams field plus the
/// LibraryOptions (variant flags, NLDM axes, cell subset).
std::uint64_t fingerprint_library(const liberty::Library& library);

/// Fingerprint of a finalized netlist: signals, names, PIs/POs, flip-flops
/// and every gate's (name, cell, fanins, output).
std::uint64_t fingerprint_netlist(const netlist::Netlist& netlist);

/// Everything run-relevant about a job that is not library/netlist content.
struct RunKnobs {
  std::string method;        ///< Canonical method name ("heu1", ...).
  double penalty_fraction = 0.0;
  double time_limit_s = 0.0;
  int random_vectors = 0;
  std::uint64_t seed = 0;
  int search_threads = 1;    ///< Time-limited searches are thread-sensitive.
  std::uint64_t max_leaves = 0;  ///< Deterministic leaf budget (0 = none).
  /// Distributed split count (0 = flat). A distributed run explores a
  /// different node set than a flat one (per-subtree budgets, no probe
  /// sweep inside shards), so it must not alias the flat entry.
  int subtrees = 0;
  /// '0'/'1' subtree restriction bits for one shard of a distributed run
  /// (empty = whole tree). Keyed so every shard gets its own cache entry
  /// and checkpoint file.
  std::string subtree_prefix;
  /// Boundary-aware cone solve (hierarchical flow): the '0'/'1'/'x'
  /// pinned-input string and the "arrival:slew,..." boundary-timing seeds.
  /// Both change the solution, so cones solved under different stitched
  /// contexts must not alias one cache entry; empty keeps the historical
  /// (context-free) keys.
  std::string pinned_inputs;
  std::string boundary_timing;
};

/// The solution-cache key: "<library>.<netlist>.<knobs>" as three 16-digit
/// hex words. Filesystem-safe (used as the disk-persistence file stem).
std::string cache_key(std::uint64_t library_fp, std::uint64_t netlist_fp,
                      const RunKnobs& knobs);

}  // namespace svtox::svc
