#include "svc/hier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/solution_io.hpp"
#include "netlist/bench_io.hpp"
#include "opt/gate_assign.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/sim.hpp"
#include "svc/fingerprint.hpp"
#include "svc/scheduler.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace svtox::svc {

namespace {

/// Applies the stitched config's delay repair: from-scratch STA, then
/// critical-path gates reset to their fastest identity-mapped version
/// until the constraint holds. Returns the final delay. When
/// `max_resets` >= 0 the loop gives up as soon as it has reset more gates
/// than that (callers probing whether a *cheap* repair exists bail out
/// instead of paying the full walk just to discard it).
double repair_delay(const netlist::Netlist& netlist, double constraint_ps,
                    sim::CircuitConfig& config, int& repaired_gates,
                    int max_resets = -1) {
  sta::TimingState timing(netlist);
  double delay = timing.analyze(config);
  if (delay <= constraint_ps) return delay;
  const sim::CircuitConfig fastest = sim::fastest_config(netlist);
  const int reset_budget = max_resets >= 0 ? repaired_gates + max_resets
                                           : std::numeric_limits<int>::max();
  for (int round = 0; delay > constraint_ps; ++round) {
    if (repaired_gates > reset_budget) return delay;
    bool changed = false;
    if (round < 256) {
      for (int g : timing.critical_path(config)) {
        sim::GateConfig& gc = config[static_cast<std::size_t>(g)];
        const sim::GateConfig& fast = fastest[static_cast<std::size_t>(g)];
        if (gc.variant != fast.variant || !gc.mapping.logical_to_physical.empty()) {
          gc = fast;
          ++repaired_gates;
          changed = true;
        }
      }
    }
    if (!changed) {
      // The critical path is already all-fast (a slew interaction off the
      // backtracked path) or the loop is taking too long: fall back to the
      // all-fast configuration, which meets any constraint >= fast delay.
      for (std::size_t g = 0; g < config.size(); ++g) {
        if (config[g].variant != fastest[g].variant ||
            !config[g].mapping.logical_to_physical.empty()) {
          config[g] = fastest[g];
          ++repaired_gates;
        }
      }
      return timing.analyze(config);
    }
    delay = timing.analyze(config);
  }
  return delay;
}

/// Parses one cone job's result against the exact netlist the job was
/// solved on (read_bench of the same text with the content-hash name, so
/// the solution text parses positionally: cone gate k is global gate
/// partition.gates[k], cone PI j is boundary input j).
opt::Solution parse_cone_solution(const netlist::Netlist& netlist,
                                  const std::string& text,
                                  const opt::Partition& part,
                                  const JobResult& result) {
  if (result.status != JobStatus::kDone) {
    throw ContractError("cone job failed: " + result.error);
  }
  const std::string name = "bt" + hex64(Fnv().str(text).value());
  const netlist::Netlist cone =
      netlist::read_bench(text, name, netlist.library(), name);
  opt::Solution sub = core::read_solution(result.solution_text, cone);
  if (sub.sleep_vector.size() != part.boundary_inputs.size() ||
      sub.config.size() != part.gates.size()) {
    throw ContractError("optimize_hierarchical: cone solution shape mismatch");
  }
  return sub;
}

/// One gate's exact leakage term [nA] under a full-signal valuation --
/// the same table lookup circuit_leakage_from_values_na sums, so
/// per-partition sums of this term are exact leakage contributions.
double gate_leakage_na(const netlist::Netlist& netlist,
                       const std::vector<bool>& values, int gate,
                       const sim::GateConfig& gc) {
  return netlist.cell_of(gate).leakage_na(
      gc.variant, gc.physical_state(sim::local_state(netlist, values, gate)));
}

/// The "arrival:slew,..." boundary-timing string for one cone: measured
/// worst-edge upstream arrival/slew per boundary input, quantized to whole
/// picoseconds (llround) so structurally identical cones in electrically
/// identical contexts keep byte-identical cache keys. Global control
/// points emit "0:0" (zero arrival, library-default slew) -- their exact
/// global seeds.
std::string boundary_timing_string(const opt::Partition& part,
                                   const netlist::Netlist& netlist,
                                   const sta::TimingState& timing) {
  std::string out;
  for (std::size_t j = 0; j < part.boundary_inputs.size(); ++j) {
    const int f = part.boundary_inputs[j];
    if (j != 0) out += ',';
    if (netlist.driver(f) < 0) {
      out += "0:0";
      continue;
    }
    const long long arrival = std::llround(
        std::max(timing.arrival_rise_ps(f), timing.arrival_fall_ps(f)));
    const long long slew =
        std::llround(std::max(timing.slew_rise_ps(f), timing.slew_fall_ps(f)));
    out += std::to_string(arrival < 0 ? 0 : arrival);
    out += ':';
    out += std::to_string(slew < 0 ? 0 : slew);
  }
  return out;
}

}  // namespace

HierResult optimize_hierarchical(const netlist::Netlist& netlist,
                                 const HierOptions& options) {
  Timer timer;
  if (!netlist.finalized()) {
    throw ContractError("optimize_hierarchical: netlist not finalized");
  }
  if (options.method == "average") {
    throw ContractError("optimize_hierarchical: per-cone method must produce a solution");
  }

  HierResult out;
  out.budget = sta::compute_delay_budget(netlist);
  out.constraint_ps = out.budget.constraint_ps(options.penalty_fraction);

  const std::vector<opt::Partition> partitions =
      opt::partition_netlist(netlist, options.partition);
  const std::size_t num_parts = partitions.size();
  out.partitions = static_cast<int>(num_parts);

  // Partition DAG levels: partitions are topo-ordered (every driven
  // boundary input comes from an earlier partition), so one forward pass
  // assigns level[p] = 1 + max level over upstream driver partitions.
  std::vector<int> part_of(static_cast<std::size_t>(netlist.num_gates()), -1);
  for (std::size_t p = 0; p < num_parts; ++p) {
    for (const int g : partitions[p].gates) {
      part_of[static_cast<std::size_t>(g)] = static_cast<int>(p);
    }
  }
  std::vector<int> level(num_parts, 0);
  int max_level = 0;
  for (std::size_t p = 0; p < num_parts; ++p) {
    for (const int f : partitions[p].boundary_inputs) {
      const int d = netlist.driver(f);
      if (d < 0) continue;
      level[p] = std::max(level[p], level[static_cast<std::size_t>(
                                        part_of[static_cast<std::size_t>(d)])] +
                                        1);
    }
    max_level = std::max(max_level, level[p]);
  }
  out.levels = num_parts == 0 ? 0 : max_level + 1;

  // Level batches of the sweep. Without boundary context every cone is
  // independent (the legacy relaxation), so one batch keeps the full
  // scheduler parallelism.
  const bool use_context = options.pin_boundaries || options.seed_boundary_timing;
  std::vector<std::vector<std::size_t>> batches;
  if (use_context) {
    batches.resize(static_cast<std::size_t>(max_level) + 1);
    for (std::size_t p = 0; p < num_parts; ++p) {
      batches[static_cast<std::size_t>(level[p])].push_back(p);
    }
  } else {
    batches.emplace_back(num_parts);
    std::iota(batches[0].begin(), batches[0].end(), std::size_t{0});
  }

  std::vector<std::string> texts;
  texts.reserve(num_parts);
  for (const opt::Partition& part : partitions) {
    texts.push_back(opt::canonical_bench_text(netlist, part));
  }

  Scheduler::Options sched_options;
  sched_options.workers = options.workers;
  sched_options.queue_capacity = num_parts + 1;
  sched_options.cache_capacity = std::max<std::size_t>(1024, num_parts);
  sched_options.cache_dir = options.cache_dir;
  Scheduler scheduler(sched_options);

  auto base_spec = [&](std::size_t p) {
    JobSpec spec;
    spec.bench_text = texts[p];
    spec.method = options.method;
    spec.penalty_percent =
        options.penalty_fraction * options.cone_penalty_scale * 100.0;
    spec.time_limit_s = options.time_limit_s;
    spec.random_vectors = options.random_vectors;
    spec.seed = options.seed;
    spec.nitrided = options.nitrided;
    spec.two_point = options.two_point;
    spec.uniform_stack = options.uniform_stack;
    spec.vt_only = options.vt_only;
    return spec;
  };

  // Control-point index per signal for the sleep votes and pin strings.
  std::vector<int> cp_index(static_cast<std::size_t>(netlist.num_signals()), -1);
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    cp_index[static_cast<std::size_t>(netlist.control_points()[i])] = i;
  }

  std::vector<bool> sleep(static_cast<std::size_t>(netlist.num_control_points()),
                          false);
  // First-voter partition per control point (-1 = unvoted). The refine
  // loop frees exactly the points a partition owns when re-solving it.
  std::vector<int> voter(sleep.size(), -1);
  sim::CircuitConfig config = sim::fastest_config(netlist);
  std::vector<bool> values;          // Global valuation, refreshed per batch.
  sta::TimingState timing(netlist);  // Reused across batches and refine passes.

  // Boundary-timing seeds come from a full STA of the stitched-so-far
  // config. Re-analyzing at every level would cost levels * O(netlist) --
  // the deep dag500k preset has 125 levels, which is ~16x the whole legacy
  // runtime -- so the timing state is refreshed only once at least 1/16 of
  // the gates were reconfigured since the last analysis. Seeds are budget
  // hints, so bounded staleness does not affect correctness, and the
  // refresh rule depends only on the partition structure, keeping cache
  // keys reproducible across runs and worker counts.
  const std::size_t seed_refresh_gates = std::max<std::size_t>(
      1, static_cast<std::size_t>(netlist.num_gates()) / 16);
  std::size_t stale_gates = 0;
  bool timing_seeded = false;

  // --- Level-ordered sweep ---------------------------------------------
  // Votes and config copies happen in ascending partition id within each
  // ascending level: a deterministic function of the partition structure,
  // byte-identical under any worker count or job completion order.
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const std::vector<std::size_t>& batch = batches[b];
    // Level b > 0 cones see the stitched upstream context. Signals feeding
    // them are driven by partitions at levels < b, whose cones -- values
    // and timing alike -- are fully determined by the votes and configs
    // already stitched (unvoted control points default to 0, matching the
    // final forced-0 stitch).
    const bool pin = options.pin_boundaries && b > 0;
    const bool seed = options.seed_boundary_timing && b > 0;
    if (pin) values = sim::simulate(netlist, sleep);
    if (seed && (!timing_seeded || stale_gates >= seed_refresh_gates)) {
      timing.analyze(config);
      timing_seeded = true;
      stale_gates = 0;
    }

    std::vector<JobId> jobs;
    jobs.reserve(batch.size());
    for (const std::size_t p : batch) {
      JobSpec spec = base_spec(p);
      const opt::Partition& part = partitions[p];
      if (pin) {
        // One char per cone control point: driven boundaries pinned to
        // their stitched simulated value, control points already voted by
        // an earlier level pinned to the decided bit (the cone optimizes
        // consistently with settled facts instead of assuming it can flip
        // them), unvoted control points left free for this cone to vote
        // on. All-free stays empty so context-free cones keep their
        // historical cache keys (and their dedup).
        std::string pins(part.boundary_inputs.size(), 'x');
        bool any = false;
        for (std::size_t j = 0; j < part.boundary_inputs.size(); ++j) {
          const int f = part.boundary_inputs[j];
          if (netlist.driver(f) >= 0) {
            pins[j] = values[static_cast<std::size_t>(f)] ? '1' : '0';
            any = true;
          } else {
            const int cp = cp_index[static_cast<std::size_t>(f)];
            if (cp >= 0 && voter[static_cast<std::size_t>(cp)] >= 0) {
              pins[j] = sleep[static_cast<std::size_t>(cp)] ? '1' : '0';
              any = true;
            }
          }
        }
        if (any) spec.pinned_inputs = std::move(pins);
      }
      if (seed) {
        spec.boundary_timing = boundary_timing_string(part, netlist, timing);
      }
      jobs.push_back(scheduler.submit(spec));
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::size_t p = batch[i];
      const opt::Partition& part = partitions[p];
      const opt::Solution sub =
          parse_cone_solution(netlist, texts[p], part, scheduler.wait(jobs[i]));
      out.solution.states_explored += sub.states_explored;
      for (std::size_t j = 0; j < part.boundary_inputs.size(); ++j) {
        const int cp = cp_index[static_cast<std::size_t>(part.boundary_inputs[j])];
        // Boundary inputs driven by other partitions carry no vote: the
        // real circuit determines them.
        if (cp < 0 || voter[static_cast<std::size_t>(cp)] >= 0) continue;
        voter[static_cast<std::size_t>(cp)] = static_cast<int>(p);
        sleep[static_cast<std::size_t>(cp)] = sub.sleep_vector[j];
      }
      for (std::size_t k = 0; k < part.gates.size(); ++k) {
        config[static_cast<std::size_t>(part.gates[k])] = sub.config[k];
      }
      stale_gates += part.gates.size();
    }
  }

  // When a stitched config misses the global constraint (per-cone budgets
  // do not compose exactly even with seeded boundary timing), the cone
  // gate assignments are redone *globally* at the stitched sleep state
  // with the same greedy gate-tree pass flat Heu1 runs per leaf -- a
  // polynomial pass under the true constraint, instead of resetting
  // critical-path gates to their fastest (worst-leakage) variants. The
  // exponential part -- the sleep state -- keeps its hierarchical
  // solution either way. Built lazily: circuits whose stitch composes
  // (the common case at scale) never pay for the global problem.
  std::unique_ptr<opt::AssignmentProblem> global_problem;
  auto global_reassign = [&](const std::vector<bool>& state,
                             sim::CircuitConfig& cfg, int& changed) {
    if (global_problem == nullptr) {
      global_problem = std::make_unique<opt::AssignmentProblem>(
          netlist, options.penalty_fraction);
    }
    opt::Solution re = opt::assign_gates_greedy(*global_problem, state);
    for (std::size_t g = 0; g < cfg.size(); ++g) {
      if (cfg[g].variant != re.config[g].variant ||
          cfg[g].mapping.logical_to_physical !=
              re.config[g].mapping.logical_to_physical) {
        ++changed;
      }
    }
    cfg = std::move(re.config);
    return re.delay_ps;
  };

  // Exact global evaluation of the stitched assignment: full simulation
  // for the leakage, full STA for the delay.
  double delay = timing.analyze(config);
  if (delay > out.constraint_ps) {
    // Cheap local repair first: walk the critical path resetting gates to
    // their fastest version. The boundary-aware sweep usually leaves the
    // stitched config close to feasible, so a handful of resets fixes the
    // violation at negligible leakage cost and O(rounds) STA time. A
    // repair that needs more than ~0.5% of the gates is destroying real
    // leakage savings instead -- throw it away and redo the whole
    // per-gate assignment globally at the stitched sleep state
    // (assign_gates_greedy, the same polynomial pass flat Heu1 runs per
    // leaf; exact, but minutes of work at 500k gates).
    sim::CircuitConfig local = config;
    int local_resets = 0;
    const double local_delay = repair_delay(netlist, out.constraint_ps, local,
                                            local_resets,
                                            netlist.num_gates() / 200);
    if (local_delay <= out.constraint_ps) {
      config = std::move(local);
      out.repaired_gates += local_resets;
      delay = local_delay;
    } else {
      delay = global_reassign(sleep, config, out.repaired_gates);
    }
  }
  values = sim::simulate(netlist, sleep);
  double leakage = sim::circuit_leakage_from_values_na(netlist, config, values);

  // --- Stitch-refine loop ----------------------------------------------
  // Re-solve the worst partitions by exact leakage contribution in their
  // full stitched context: driven boundaries pinned to their simulated
  // values, control points first-voted by *other* partitions pinned to
  // the decided bits, and the partition's own control points left free to
  // re-vote now that the cone sees everything around it. Every candidate
  // is evaluated exactly on the real circuit (fresh simulation, from-
  // scratch STA, repair when the patched config misses the constraint)
  // and kept only if the global exact leakage improves; the loop stops
  // when a whole pass keeps nothing or the pass budget runs out.
  for (int pass = 0; pass < options.refine_passes && options.refine_worst > 0;
       ++pass) {
    ++out.refine_passes_run;
    std::vector<double> contrib(num_parts, 0.0);
    for (int g = 0; g < netlist.num_gates(); ++g) {
      contrib[static_cast<std::size_t>(part_of[static_cast<std::size_t>(g)])] +=
          gate_leakage_na(netlist, values, g, config[static_cast<std::size_t>(g)]);
    }
    std::vector<std::size_t> order(num_parts);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (contrib[a] != contrib[b]) return contrib[a] > contrib[b];
      return a < b;  // deterministic tie-break by partition id
    });
    const std::size_t worst =
        std::min<std::size_t>(static_cast<std::size_t>(options.refine_worst),
                              num_parts);

    if (options.seed_boundary_timing) timing.analyze(config);
    std::vector<JobId> jobs;
    jobs.reserve(worst);
    for (std::size_t i = 0; i < worst; ++i) {
      const std::size_t p = order[i];
      const opt::Partition& part = partitions[p];
      JobSpec spec = base_spec(p);
      std::string pins(part.boundary_inputs.size(), 'x');
      bool any = false;
      for (std::size_t j = 0; j < part.boundary_inputs.size(); ++j) {
        const int f = part.boundary_inputs[j];
        const int cp = cp_index[static_cast<std::size_t>(f)];
        if (cp < 0) {
          pins[j] = values[static_cast<std::size_t>(f)] ? '1' : '0';
          any = true;
        } else if (voter[static_cast<std::size_t>(cp)] >= 0 &&
                   voter[static_cast<std::size_t>(cp)] != static_cast<int>(p)) {
          pins[j] = sleep[static_cast<std::size_t>(cp)] ? '1' : '0';
          any = true;
        }
      }
      if (any) spec.pinned_inputs = std::move(pins);
      if (options.seed_boundary_timing) {
        spec.boundary_timing = boundary_timing_string(part, netlist, timing);
      }
      jobs.push_back(scheduler.submit(spec));
    }

    // Candidates are evaluated and accepted in rank order (deterministic);
    // an accepted candidate's state immediately becomes the baseline the
    // next candidate must beat.
    bool accepted_any = false;
    for (std::size_t i = 0; i < worst; ++i) {
      const std::size_t p = order[i];
      const opt::Partition& part = partitions[p];
      const opt::Solution sub =
          parse_cone_solution(netlist, texts[p], part, scheduler.wait(jobs[i]));
      out.solution.states_explored += sub.states_explored;

      std::vector<bool> trial_sleep = sleep;
      for (std::size_t j = 0; j < part.boundary_inputs.size(); ++j) {
        const int cp = cp_index[static_cast<std::size_t>(part.boundary_inputs[j])];
        if (cp >= 0 && voter[static_cast<std::size_t>(cp)] == static_cast<int>(p)) {
          trial_sleep[static_cast<std::size_t>(cp)] = sub.sleep_vector[j];
        }
      }
      sim::CircuitConfig trial = config;
      for (std::size_t k = 0; k < part.gates.size(); ++k) {
        trial[static_cast<std::size_t>(part.gates[k])] = sub.config[k];
      }
      // Leakage first, delay second: a candidate that does not improve the
      // leakage even *before* any delay repair is rejected without paying
      // for an STA (repairs only trade leakage for delay, never the other
      // way), which keeps a no-progress refine pass at simulation cost.
      const std::vector<bool> trial_values = sim::simulate(netlist, trial_sleep);
      double trial_leakage =
          sim::circuit_leakage_from_values_na(netlist, trial, trial_values);
      if (trial_leakage >= leakage) continue;
      int trial_repaired = 0;
      double trial_delay = timing.analyze(trial);
      if (trial_delay > out.constraint_ps) {
        // The cheap local repair, not a global re-assignment: an
        // over-repaired trial simply fails the exact leakage check below,
        // and a no-progress pass stays at simulation + repair cost even
        // on the largest circuits.
        trial_delay =
            repair_delay(netlist, out.constraint_ps, trial, trial_repaired);
        trial_leakage =
            sim::circuit_leakage_from_values_na(netlist, trial, trial_values);
        if (trial_leakage >= leakage) continue;
      }
      sleep = std::move(trial_sleep);
      config = std::move(trial);
      values = trial_values;
      leakage = trial_leakage;
      delay = trial_delay;
      out.repaired_gates += trial_repaired;
      ++out.refine_accepted;
      accepted_any = true;
    }
    if (!accepted_any) break;
  }

  const SchedulerStats stats = scheduler.stats();
  out.unique_solves = stats.executed;
  out.cache_hits = stats.cache.hits + stats.cache.disk_hits + stats.cache.inflight_waits;

  out.solution.sleep_vector = std::move(sleep);
  out.solution.config = std::move(config);
  out.solution.leakage_na = leakage;
  out.solution.delay_ps = delay;
  out.solution.runtime_s = timer.seconds();
  out.runtime_s = out.solution.runtime_s;
  return out;
}

}  // namespace svtox::svc
