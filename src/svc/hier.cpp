#include "svc/hier.hpp"

#include <vector>

#include "core/solution_io.hpp"
#include "netlist/bench_io.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/sim.hpp"
#include "svc/fingerprint.hpp"
#include "svc/scheduler.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace svtox::svc {

namespace {

/// Applies the stitched config's delay repair: from-scratch STA, then
/// critical-path gates reset to their fastest identity-mapped version
/// until the constraint holds. Returns the final delay.
double repair_delay(const netlist::Netlist& netlist, double constraint_ps,
                    sim::CircuitConfig& config, int& repaired_gates) {
  sta::TimingState timing(netlist);
  double delay = timing.analyze(config);
  if (delay <= constraint_ps) return delay;
  const sim::CircuitConfig fastest = sim::fastest_config(netlist);
  for (int round = 0; delay > constraint_ps; ++round) {
    bool changed = false;
    if (round < 256) {
      for (int g : timing.critical_path(config)) {
        sim::GateConfig& gc = config[static_cast<std::size_t>(g)];
        const sim::GateConfig& fast = fastest[static_cast<std::size_t>(g)];
        if (gc.variant != fast.variant || !gc.mapping.logical_to_physical.empty()) {
          gc = fast;
          ++repaired_gates;
          changed = true;
        }
      }
    }
    if (!changed) {
      // The critical path is already all-fast (a slew interaction off the
      // backtracked path) or the loop is taking too long: fall back to the
      // all-fast configuration, which meets any constraint >= fast delay.
      for (std::size_t g = 0; g < config.size(); ++g) {
        if (config[g].variant != fastest[g].variant ||
            !config[g].mapping.logical_to_physical.empty()) {
          config[g] = fastest[g];
          ++repaired_gates;
        }
      }
      return timing.analyze(config);
    }
    delay = timing.analyze(config);
  }
  return delay;
}

}  // namespace

HierResult optimize_hierarchical(const netlist::Netlist& netlist,
                                 const HierOptions& options) {
  Timer timer;
  if (!netlist.finalized()) {
    throw ContractError("optimize_hierarchical: netlist not finalized");
  }
  if (options.method == "average") {
    throw ContractError("optimize_hierarchical: per-cone method must produce a solution");
  }

  HierResult out;
  out.budget = sta::compute_delay_budget(netlist);
  out.constraint_ps = out.budget.constraint_ps(options.penalty_fraction);

  const std::vector<opt::Partition> partitions =
      opt::partition_netlist(netlist, options.partition);
  out.partitions = static_cast<int>(partitions.size());

  // Solve every cone through the scheduler; identical cone text dedups in
  // the resource pool and the solution cache (inflight dedup makes even
  // concurrent identical jobs solve once).
  Scheduler::Options sched_options;
  sched_options.workers = options.workers;
  sched_options.queue_capacity = partitions.size() + 1;
  sched_options.cache_capacity = std::max<std::size_t>(1024, partitions.size());
  sched_options.cache_dir = options.cache_dir;
  Scheduler scheduler(sched_options);

  std::vector<std::string> texts;
  texts.reserve(partitions.size());
  std::vector<JobId> jobs;
  jobs.reserve(partitions.size());
  for (const opt::Partition& part : partitions) {
    texts.push_back(opt::canonical_bench_text(netlist, part));
    JobSpec spec;
    spec.bench_text = texts.back();
    spec.method = options.method;
    spec.penalty_percent =
        options.penalty_fraction * options.cone_penalty_scale * 100.0;
    spec.time_limit_s = options.time_limit_s;
    spec.random_vectors = options.random_vectors;
    spec.seed = options.seed;
    spec.nitrided = options.nitrided;
    spec.two_point = options.two_point;
    spec.uniform_stack = options.uniform_stack;
    spec.vt_only = options.vt_only;
    jobs.push_back(scheduler.submit(spec));
  }

  // Stitch. Control-point index per signal for the sleep votes.
  std::vector<int> cp_index(static_cast<std::size_t>(netlist.num_signals()), -1);
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    cp_index[static_cast<std::size_t>(netlist.control_points()[i])] = i;
  }
  std::vector<bool> sleep(static_cast<std::size_t>(netlist.num_control_points()), false);
  std::vector<bool> voted(sleep.size(), false);
  sim::CircuitConfig config = sim::fastest_config(netlist);

  for (std::size_t p = 0; p < partitions.size(); ++p) {
    const JobResult result = scheduler.wait(jobs[p]);
    if (result.status != JobStatus::kDone) {
      throw ContractError("cone job failed: " + result.error);
    }
    // Reconstruct the exact netlist the job was solved against (read_bench
    // of the same text with the content-hash name) so the solution text
    // parses positionally: cone gate k is global gate partition.gates[k],
    // cone PI j is boundary input j.
    const std::string name = "bt" + hex64(Fnv().str(texts[p]).value());
    const netlist::Netlist cone =
        netlist::read_bench(texts[p], name, netlist.library(), name);
    const opt::Solution sub = core::read_solution(result.solution_text, cone);
    out.solution.states_explored += sub.states_explored;

    const opt::Partition& part = partitions[p];
    if (sub.sleep_vector.size() != part.boundary_inputs.size() ||
        sub.config.size() != part.gates.size()) {
      throw ContractError("optimize_hierarchical: cone solution shape mismatch");
    }
    for (std::size_t j = 0; j < part.boundary_inputs.size(); ++j) {
      const int cp = cp_index[static_cast<std::size_t>(part.boundary_inputs[j])];
      // Boundary inputs driven by other partitions carry no vote: the real
      // circuit determines them.
      if (cp < 0 || voted[static_cast<std::size_t>(cp)]) continue;
      voted[static_cast<std::size_t>(cp)] = true;
      sleep[static_cast<std::size_t>(cp)] = sub.sleep_vector[j];
    }
    for (std::size_t k = 0; k < part.gates.size(); ++k) {
      config[static_cast<std::size_t>(part.gates[k])] = sub.config[k];
    }
  }

  const SchedulerStats stats = scheduler.stats();
  out.unique_solves = stats.executed;
  out.cache_hits = stats.cache.hits + stats.cache.disk_hits + stats.cache.inflight_waits;

  // Exact global evaluation of the stitched assignment: full simulation
  // for the leakage, full STA (+ repair) for the delay.
  const double delay = repair_delay(netlist, out.constraint_ps, config, out.repaired_gates);
  const std::vector<bool> values = sim::simulate(netlist, sleep);
  out.solution.sleep_vector = std::move(sleep);
  out.solution.config = std::move(config);
  out.solution.leakage_na =
      sim::circuit_leakage_from_values_na(netlist, out.solution.config, values);
  out.solution.delay_ps = delay;
  out.solution.runtime_s = timer.seconds();
  out.runtime_s = out.solution.runtime_s;
  return out;
}

}  // namespace svtox::svc
