#include "svc/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace svtox::svc {

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    // Column-level positions matter more than lines for one-line NDJSON.
    throw ParseError("<json>", static_cast<int>(pos_), what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  /// Bounds container nesting so adversarial input ("[[[[...") fails with
  /// a ParseError instead of overflowing the parser's call stack.
  static constexpr int kMaxDepth = 64;
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxDepth) {
        parser_.fail("nesting deeper than 64 levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    Parser& parser_;
  };

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': {
        DepthGuard guard(*this);
        return parse_object();
      }
      case '[': {
        DepthGuard guard(*this);
        return parse_array();
      }
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      Json value = parse_value();
      // Last duplicate wins, matching common lenient decoders.
      bool replaced = false;
      for (auto& member : members) {
        if (member.first == key) {
          member.second = std::move(value);
          replaced = true;
          break;
        }
      }
      if (!replaced) members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(members));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(parse_hex4(), out); break;
        default: fail("unknown escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return value;
  }

  void append_utf8(unsigned cp, std::string& out) {
    // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Strict JSON: no leading zeros ("01"), which strtod would accept.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      fail("leading zero in number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan; null is the conventional stand-in
    return;
  }
  // Integers (job ids, counters) print without a decimal point so they
  // round-trip textually; everything else uses shortest-ish %.17g.
  const double rounded = std::nearbyint(v);
  if (rounded == v && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that parses back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[40];
    std::snprintf(probe, sizeof probe, "%.*g", precision, v);
    if (std::strtod(probe, nullptr) == v) {
      out += probe;
      return;
    }
  }
  out += buf;
}

void dump_value(const Json& v, std::string& out) {
  switch (v.type()) {
    case Json::Type::kNull: out += "null"; break;
    case Json::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Json::Type::kNumber: dump_number(v.as_number(), out); break;
    case Json::Type::kString: dump_string(v.as_string(), out); break;
    case Json::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(item, out);
      }
      out.push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(key, out);
        out.push_back(':');
        dump_value(value, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

const std::string& Json::empty_string() {
  static const std::string kEmpty;
  return kEmpty;
}

const Json* Json::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json& Json::set(std::string_view key, Json value) {
  if (is_null()) type_ = Type::kObject;
  if (!is_object()) throw ContractError("Json::set on a non-object");
  for (auto& [name, existing] : object_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::string(key), std::move(value));
  return *this;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace svtox::svc
