#include "svc/cluster.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svtox::svc {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options), ring_(options.members, options.ring_vnodes) {
  if (std::find(options_.members.begin(), options_.members.end(), options_.self) ==
      options_.members.end()) {
    throw ContractError("cluster self address '" + options_.self +
                        "' is not in the member list");
  }
}

std::vector<std::string> Cluster::peers() const {
  std::vector<std::string> out;
  for (const std::string& member : ring_.members()) {
    if (member != options_.self) out.push_back(member);
  }
  return out;
}

ClientOptions Cluster::client_options() const {
  ClientOptions opts;
  opts.max_attempts = std::max(1, options_.connect_attempts);
  opts.backoff_initial_s = options_.backoff_initial_s;
  opts.request_timeout_s = options_.request_timeout_s;
  return opts;
}

Cluster::Peer& Cluster::peer_slot(const std::string& member) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (auto& [name, peer] : peers_) {
    if (name == member) return *peer;
  }
  peers_.emplace_back(member, std::make_unique<Peer>());
  return *peers_.back().second;
}

Json Cluster::request(const std::string& member, const Json& request_json,
                      bool fresh_connection) {
  const std::string address = "tcp://" + member;
  if (fresh_connection) {
    ClientOptions opts = client_options();
    // Blocking calls legitimately park server-side (inflight dedup);
    // waiting is the point, so no reply timeout here.
    opts.request_timeout_s = 0.0;
    Client client(address, opts);
    return client.request(request_json);
  }
  Peer& peer = peer_slot(member);
  std::lock_guard<std::mutex> lock(peer.mu);
  if (peer.client == nullptr) {
    peer.client = std::make_unique<Client>(address, client_options());
  }
  try {
    return peer.client->request(request_json);
  } catch (...) {
    // A torn pooled channel is garbage for the next caller; reconnect lazily.
    peer.client.reset();
    throw;
  }
}

}  // namespace svtox::svc
