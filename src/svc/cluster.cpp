#include "svc/cluster.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace svtox::svc {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::vector<std::string> sorted_copy(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

const char* peer_health_name(PeerHealth health) {
  switch (health) {
    case PeerHealth::kUp:
      return "up";
    case PeerHealth::kSuspect:
      return "suspect";
    case PeerHealth::kDown:
      return "down";
  }
  return "?";
}

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      ring_(std::make_shared<const HashRing>(options.members,
                                             options.ring_vnodes)) {
  if (std::find(options_.members.begin(), options_.members.end(), options_.self) ==
      options_.members.end()) {
    throw ContractError("cluster self address '" + options_.self +
                        "' is not in the member list");
  }
  const Clock::time_point now = Clock::now();
  for (const std::string& member : ring_->members()) {
    if (member == options_.self) continue;
    PeerState state;
    state.last_ok = now;  // grace: a just-added peer starts `up`
    health_.emplace_back(member, state);
  }
}

Cluster::~Cluster() { stop(); }

std::shared_ptr<const HashRing> Cluster::ring() const {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_;
}

std::vector<std::string> Cluster::peers() const {
  std::vector<std::string> out;
  for (const std::string& member : ring()->members()) {
    if (member != options_.self) out.push_back(member);
  }
  return out;
}

bool Cluster::reload(std::vector<std::string> members) {
  if (std::find(members.begin(), members.end(), options_.self) ==
      members.end()) {
    throw ContractError("cluster reload would drop self address '" +
                        options_.self + "'");
  }
  // Validates emptiness/duplicates; throws before any state changes.
  auto next = std::make_shared<const HashRing>(members, options_.ring_vnodes);
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    if (sorted_copy(ring_->members()) == sorted_copy(members)) return false;
    ring_ = next;
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  {
    // Keep health entries for surviving peers (their history is real);
    // new peers start in the `up` grace window, removed peers vanish.
    std::lock_guard<std::mutex> lock(health_mu_);
    const Clock::time_point now = Clock::now();
    std::vector<std::pair<std::string, PeerState>> next_health;
    for (const std::string& member : next->members()) {
      if (member == options_.self) continue;
      auto it = std::find_if(health_.begin(), health_.end(),
                             [&](const auto& e) { return e.first == member; });
      if (it != health_.end()) {
        next_health.emplace_back(member, it->second);
      } else {
        PeerState state;
        state.last_ok = now;
        next_health.emplace_back(member, state);
      }
    }
    health_ = std::move(next_health);
  }
  prune_peer_slots(next->members());
  std::ostringstream msg;
  msg << "cluster membership reloaded (epoch " << epoch() << "): ";
  for (std::size_t i = 0; i < next->members().size(); ++i) {
    if (i != 0) msg << ",";
    msg << next->members()[i];
  }
  log_info(msg.str());
  return true;
}

bool Cluster::reload_from_file() {
  if (options_.peers_file.empty()) {
    throw ContractError("cluster has no peers file configured");
  }
  std::ifstream in(options_.peers_file);
  if (!in) {
    throw Error(ErrorCode::kIo,
                "cannot read peers file " + options_.peers_file);
  }
  std::vector<std::string> members;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    for (char& c : line) {
      if (c == ',') c = ' ';
    }
    std::istringstream fields(line);
    std::string token;
    while (fields >> token) {
      if (std::find(members.begin(), members.end(), token) == members.end()) {
        members.push_back(token);
      }
    }
  }
  if (std::find(members.begin(), members.end(), options_.self) ==
      members.end()) {
    members.push_back(options_.self);  // the file need not name this node
  }
  return reload(std::move(members));
}

void Cluster::start() {
  if (options_.heartbeat_interval_s <= 0.0) return;
  std::lock_guard<std::mutex> lock(hb_mu_);
  if (hb_running_) return;
  hb_stop_ = false;
  hb_running_ = true;
  hb_thread_ = std::thread([this] { heartbeat_loop(); });
}

void Cluster::stop() {
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    if (!hb_running_) return;
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  hb_thread_.join();
  {
    std::lock_guard<std::mutex> lock(hb_mu_);
    hb_running_ = false;
  }
}

void Cluster::heartbeat_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(
          lock,
          std::chrono::duration<double>(options_.heartbeat_interval_s),
          [this] { return hb_stop_; });
      if (hb_stop_) return;
    }
    // Peers are probed even when `down`: the first successful ping is what
    // restores routing to a recovered node.
    for (const std::string& member : peers()) {
      {
        std::lock_guard<std::mutex> lock(hb_mu_);
        if (hb_stop_) return;
      }
      ping_peer(member);
    }
  }
}

void Cluster::ping_peer(const std::string& member) {
  // A short hard deadline on every stage: a heartbeat must never block
  // behind a SYN timeout or a stalled peer, and a single failed ping is
  // routine (EINTR, ECONNRESET, a restarting daemon) -- never worth more
  // than a debug line.
  const double bound =
      std::max(0.1, std::min(options_.suspect_after_s,
                             2.0 * options_.heartbeat_interval_s));
  ClientOptions opts;
  opts.max_attempts = 1;
  opts.connect_timeout_s = bound;
  opts.request_timeout_s = bound;
  opts.total_deadline_s = bound;
  const Clock::time_point started = Clock::now();
  try {
    Client client("tcp://" + member, opts);
    Json ping = Json::object();
    ping.set("cmd", "ping");
    const Json reply = client.request(ping);
    const Json* ok = reply.get("ok");
    if (ok == nullptr || !ok->as_bool(false)) {
      throw Error(ErrorCode::kIo, "ping rejected");
    }
    note_contact(member, true, seconds_between(started, Clock::now()));
  } catch (const std::exception& e) {
    note_contact(member, false, -1.0);
    log_debug("heartbeat to " + member + " failed: " + e.what());
  }
}

void Cluster::note_contact(const std::string& member, bool ok,
                           double latency_s) {
  std::lock_guard<std::mutex> lock(health_mu_);
  auto it = std::find_if(health_.begin(), health_.end(),
                         [&](const auto& e) { return e.first == member; });
  if (it == health_.end()) return;  // removed by a concurrent reload
  PeerState& state = it->second;
  if (ok) {
    const PeerHealth before = health_of_state(state, Clock::now());
    state.last_ok = Clock::now();
    state.ever_ok = true;
    if (latency_s >= 0.0) {
      state.latency_ema_s = state.latency_ema_s <= 0.0
                                ? latency_s
                                : 0.8 * state.latency_ema_s + 0.2 * latency_s;
    }
    if (before == PeerHealth::kDown) {
      log_info("peer " + member + " recovered (was down)");
    }
  } else {
    ++state.failures;
  }
}

PeerHealth Cluster::health_of_state(const PeerState& state,
                                    Clock::time_point now) const {
  const double age = seconds_between(state.last_ok, now);
  if (age <= options_.suspect_after_s) return PeerHealth::kUp;
  if (age <= options_.down_after_s) return PeerHealth::kSuspect;
  return PeerHealth::kDown;
}

PeerHealth Cluster::health(const std::string& member) const {
  if (options_.heartbeat_interval_s <= 0.0 || member == options_.self) {
    return PeerHealth::kUp;
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  auto it = std::find_if(health_.begin(), health_.end(),
                         [&](const auto& e) { return e.first == member; });
  if (it == health_.end()) return PeerHealth::kUp;
  return health_of_state(it->second, Clock::now());
}

std::vector<PeerHealthSnapshot> Cluster::health_snapshot() const {
  std::vector<PeerHealthSnapshot> out;
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(health_mu_);
  out.reserve(health_.size());
  for (const auto& [member, state] : health_) {
    PeerHealthSnapshot snap;
    snap.member = member;
    snap.health = options_.heartbeat_interval_s <= 0.0
                      ? PeerHealth::kUp
                      : health_of_state(state, now);
    snap.latency_s = state.latency_ema_s;
    snap.since_ok_s = state.ever_ok ? seconds_between(state.last_ok, now) : -1.0;
    snap.failures = state.failures;
    out.push_back(std::move(snap));
  }
  return out;
}

ClientOptions Cluster::client_options() const {
  ClientOptions opts;
  opts.max_attempts = std::max(1, options_.connect_attempts);
  opts.backoff_initial_s = options_.backoff_initial_s;
  opts.request_timeout_s = options_.request_timeout_s;
  return opts;
}

void Cluster::prune_peer_slots(const std::vector<std::string>& members) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  peers_.erase(std::remove_if(peers_.begin(), peers_.end(),
                              [&](const auto& entry) {
                                return std::find(members.begin(), members.end(),
                                                 entry.first) == members.end();
                              }),
               peers_.end());
}

Cluster::Peer& Cluster::peer_slot(const std::string& member) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (auto& [name, peer] : peers_) {
    if (name == member) return *peer;
  }
  peers_.emplace_back(member, std::make_unique<Peer>());
  return *peers_.back().second;
}

Json Cluster::request(const std::string& member, const Json& request_json,
                      bool fresh_connection, double fresh_reply_timeout_s) {
  if (health(member) == PeerHealth::kDown) {
    // Routing around a dead node: fail instantly instead of spending a
    // connect timeout per request. Heartbeats keep probing the peer and
    // lift this the moment it answers again.
    throw Error(ErrorCode::kIo, "peer " + member + " is down");
  }
  const std::string address = "tcp://" + member;
  try {
    Json reply;
    if (fresh_connection) {
      ClientOptions opts = client_options();
      // Blocking calls legitimately park server-side (inflight dedup);
      // waiting is the point, so no reply timeout unless the caller set
      // an explicit bound.
      opts.request_timeout_s = fresh_reply_timeout_s;
      Client client(address, opts);
      reply = client.request(request_json);
    } else {
      Peer& peer = peer_slot(member);
      std::lock_guard<std::mutex> lock(peer.mu);
      if (peer.client == nullptr) {
        peer.client = std::make_unique<Client>(address, client_options());
      }
      try {
        reply = peer.client->request(request_json);
      } catch (...) {
        // A torn pooled channel is garbage for the next caller; reconnect
        // lazily.
        peer.client.reset();
        throw;
      }
    }
    // Any successful application round trip is proof of life -- a peer
    // busy with real work must not drift to `suspect` behind queued pings.
    note_contact(member, true, -1.0);
    return reply;
  } catch (const Error&) {
    note_contact(member, false, -1.0);
    throw;
  }
}

}  // namespace svtox::svc
