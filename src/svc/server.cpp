#include "svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"

namespace svtox::svc {

namespace {

/// Hard cap on one NDJSON request line. A client that streams an unbounded
/// line (malicious or broken framing) gets an error and a closed
/// connection instead of growing the server's buffer without limit.
constexpr std::size_t kMaxRequestBytes = 1 << 20;

/// Writes the whole buffer, riding out EINTR/partial writes.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Json error_reply(const std::string& what, const std::string& code = "") {
  Json reply = Json::object();
  reply.set("ok", false);
  reply.set("error", what);
  if (!code.empty()) reply.set("error_code", code);
  return reply;
}

Json cache_stats_json(const CacheStats& stats) {
  Json json = Json::object();
  json.set("hits", stats.hits);
  json.set("disk_hits", stats.disk_hits);
  json.set("misses", stats.misses);
  json.set("inflight_waits", stats.inflight_waits);
  json.set("evictions", stats.evictions);
  json.set("corrupt", stats.corrupt);
  json.set("entries", stats.entries);
  return json;
}

}  // namespace

Server::Server(Scheduler& scheduler, std::string socket_path)
    : scheduler_(scheduler), socket_path_(std::move(socket_path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof addr.sun_path) {
    throw ContractError("socket path too long: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof addr.sun_path - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw ContractError("cannot create unix socket");
  ::unlink(socket_path_.c_str());  // stale socket from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ContractError("cannot bind " + socket_path_ + ": " + what);
  }
}

Server::~Server() { stop(); }

void Server::start() {
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd closed by stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    client_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool close_after = false;
  while (!close_after) {
    if (SVTOX_FAIL_POINT_FAILS("server_read")) break;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect or stop()
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxRequestBytes &&
        buffer.find('\n') == std::string::npos) {
      write_all(fd, error_reply("request line exceeds 1 MiB", "parse").dump() + "\n");
      break;
    }
    std::size_t newline;
    while (!close_after && (newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.size() > kMaxRequestBytes) {
        write_all(fd, error_reply("request line exceeds 1 MiB", "parse").dump() + "\n");
        close_after = true;
        break;
      }
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      Json reply;
      try {
        reply = dispatch(Json::parse(line), close_after);
      } catch (const Error& e) {
        reply = error_reply(e.what(), to_string(e.code()));
      } catch (const std::exception& e) {
        reply = error_reply(e.what(), "contract");
      }
      if (SVTOX_FAIL_POINT_FAILS("server_write") ||
          !write_all(fd, reply.dump() + "\n")) {
        close_after = true;
      }
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(client_fds_.begin(), client_fds_.end(), fd);
  if (it != client_fds_.end()) {
    ::close(fd);
    client_fds_.erase(it);
  }
}

Json Server::dispatch(const Json& request, bool& close_after) {
  const std::string cmd =
      request.get("cmd") != nullptr ? request.get("cmd")->as_string() : "";
  if (cmd == "submit") {
    // The spec is the request minus the routing key.
    Json spec_json = Json::object();
    for (const auto& [key, value] : request.as_object()) {
      if (key != "cmd") spec_json.set(key, value);
    }
    const JobId id = scheduler_.submit(job_spec_from_json(spec_json));
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("job", id);
    return reply;
  }

  if (cmd == "status" || cmd == "result" || cmd == "cancel") {
    const Json* job = request.get("job");
    if (job == nullptr || !job->is_number()) {
      return error_reply("'" + cmd + "' needs a numeric 'job' id");
    }
    const JobId id = static_cast<JobId>(job->as_int());
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("job", id);
    if (cmd == "status") {
      reply.set("status", to_string(scheduler_.status(id)));
    } else if (cmd == "result") {
      const bool include_solution =
          request.get("solution") == nullptr || request.get("solution")->as_bool(true);
      scheduler_.status(id);  // throws early for unknown ids
      const JobResult result = scheduler_.wait(id);
      const Json result_json = job_result_to_json(result, include_solution);
      for (const auto& [key, value] : result_json.as_object()) {
        reply.set(key, value);
      }
    } else {
      reply.set("cancelled", scheduler_.cancel(id));
    }
    return reply;
  }

  if (cmd == "stats") {
    const SchedulerStats stats = scheduler_.stats();
    Json jobs = Json::object();
    jobs.set("submitted", stats.submitted);
    jobs.set("completed", stats.completed);
    jobs.set("failed", stats.failed);
    jobs.set("cancelled", stats.cancelled);
    jobs.set("executed", stats.executed);
    jobs.set("retried", stats.retried);
    jobs.set("queued", stats.queued);
    jobs.set("running", stats.running);
    jobs.set("workers", stats.workers);
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("jobs", jobs);
    reply.set("cache", cache_stats_json(stats.cache));
    return reply;
  }

  if (cmd == "shutdown") {
    const Json* drain = request.get("drain");
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
      shutdown_drain_ = drain == nullptr ? true : drain->as_bool(true);
    }
    shutdown_cv_.notify_all();
    close_after = true;
    Json reply = Json::object();
    reply.set("ok", true);
    return reply;
  }

  return error_reply(cmd.empty() ? "missing 'cmd'" : "unknown cmd '" + cmd + "'");
}

bool Server::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_ || stopping_; });
  return shutdown_drain_;
}

void Server::stop() {
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    shutdown_requested_ = true;
    // close() alone does NOT wake a thread blocked in accept() on Linux;
    // shutdown() does. The fd itself is closed after the acceptor joins.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    // Wake blocked reads; the handler threads close the fds themselves.
    for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(handlers_);
  }
  shutdown_cv_.notify_all();
  // Belt and braces for platforms where shutdown() leaves accept() parked:
  // a throwaway connection forces it to return (the loop then sees
  // stopping_ and exits).
  const int wake = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (wake >= 0) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof addr.sun_path - 1);
    ::connect(wake, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(wake);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& handler : handlers) {
    if (handler.joinable()) handler.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (const int fd : client_fds_) ::close(fd);
    client_fds_.clear();
  }
  ::unlink(socket_path_.c_str());
}

}  // namespace svtox::svc
