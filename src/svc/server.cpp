#include "svc/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "net/frame.hpp"
#include "svc/dist_cache.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"

namespace svtox::svc {

namespace {

/// Hard cap on one NDJSON request line. A client that streams an unbounded
/// line (malicious or broken framing) gets an error and a closed
/// connection instead of growing the server's buffer without limit. The
/// TCP transport enforces the same bound via net::kMaxFrameBytes -- there
/// it costs the server four header bytes, not a megabyte.
constexpr std::size_t kMaxRequestBytes = 1 << 20;

static_assert(net::kMaxFrameBytes == kMaxRequestBytes,
              "both transports must enforce the same request cap");

/// Writes the whole buffer, riding out EINTR/partial writes.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Json error_reply(const std::string& what, const std::string& code = "") {
  Json reply = Json::object();
  reply.set("ok", false);
  reply.set("error", what);
  if (!code.empty()) reply.set("error_code", code);
  return reply;
}

Json cache_stats_json(const CacheStats& stats) {
  Json json = Json::object();
  json.set("hits", stats.hits);
  json.set("disk_hits", stats.disk_hits);
  json.set("misses", stats.misses);
  json.set("inflight_waits", stats.inflight_waits);
  json.set("evictions", stats.evictions);
  json.set("corrupt", stats.corrupt);
  json.set("entries", stats.entries);
  json.set("inflight", stats.inflight);
  return json;
}

ServerOptions unix_only_options(std::string socket_path) {
  ServerOptions options;
  options.socket_path = std::move(socket_path);
  return options;
}

}  // namespace

Server::Server(Scheduler& scheduler, std::string socket_path)
    : Server(scheduler, unix_only_options(std::move(socket_path))) {}

Server::Server(Scheduler& scheduler, ServerOptions options)
    : scheduler_(scheduler), options_(std::move(options)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof addr.sun_path) {
    throw ContractError("socket path too long: " + options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof addr.sun_path - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw ContractError("cannot create unix socket");
  ::unlink(options_.socket_path.c_str());  // stale socket from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ContractError("cannot bind " + options_.socket_path + ": " + what);
  }
  if (options_.tcp_port >= 0) {
    try {
      tcp_listener_ = net::Listener::tcp(options_.tcp_host, options_.tcp_port);
    } catch (...) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
  }
}

Server::~Server() { stop(); }

void Server::start() {
  acceptor_ = std::thread([this] { accept_loop(); });
  if (tcp_listener_.valid()) {
    tcp_acceptor_ = std::thread([this] { accept_loop_tcp(); });
  }
}

bool Server::admit(int fd, bool tcp) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return false;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (client_fds_.size() < options_.max_connections) {
      client_fds_.push_back(fd);
      handlers_.emplace_back([this, fd, tcp] {
        if (tcp) {
          handle_connection_tcp(fd);
        } else {
          handle_connection(fd);
        }
      });
      return true;
    }
    busy_rejections_.fetch_add(1, std::memory_order_relaxed);
  }
  // At capacity: an explicit, retryable rejection beats a silently parked
  // connection. The reply is tiny, so this cannot stall the acceptor.
  const std::string payload =
      error_reply("server at connection capacity; retry later", "busy").dump();
  if (tcp) {
    std::string wire;
    net::encode_frame(wire, payload);
    bytes_out_tcp_.fetch_add(wire.size(), std::memory_order_relaxed);
    write_all(fd, wire);
  } else {
    bytes_out_unix_.fetch_add(payload.size() + 1, std::memory_order_relaxed);
    write_all(fd, payload + "\n");
  }
  ::close(fd);
  return true;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd closed by stop()
    }
    if (!admit(fd, /*tcp=*/false)) return;
  }
}

void Server::accept_loop_tcp() {
  for (;;) {
    const int fd = tcp_listener_.accept_fd();
    if (fd < 0) return;  // shut down by stop()
    if (!admit(fd, /*tcp=*/true)) return;
  }
}

void Server::finish_connection(int fd) {
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(client_fds_.begin(), client_fds_.end(), fd);
  if (it != client_fds_.end()) {
    ::close(fd);
    client_fds_.erase(it);
  }
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool close_after = false;
  while (!close_after) {
    if (SVTOX_FAIL_POINT_FAILS("server_read")) break;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect or stop()
    buffer.append(chunk, static_cast<std::size_t>(n));
    bytes_in_unix_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    if (buffer.size() > kMaxRequestBytes &&
        buffer.find('\n') == std::string::npos) {
      write_all(fd, error_reply("request line exceeds 1 MiB", "parse").dump() + "\n");
      break;
    }
    std::size_t newline;
    while (!close_after && (newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.size() > kMaxRequestBytes) {
        write_all(fd, error_reply("request line exceeds 1 MiB", "parse").dump() + "\n");
        close_after = true;
        break;
      }
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      Json reply;
      try {
        reply = dispatch(Json::parse(line), close_after);
      } catch (const Error& e) {
        reply = error_reply(e.what(), to_string(e.code()));
      } catch (const std::exception& e) {
        reply = error_reply(e.what(), "contract");
      }
      const std::string payload = reply.dump() + "\n";
      bytes_out_unix_.fetch_add(payload.size(), std::memory_order_relaxed);
      if (SVTOX_FAIL_POINT_FAILS("server_write") || !write_all(fd, payload)) {
        close_after = true;
      }
    }
  }
  finish_connection(fd);
}

void Server::handle_connection_tcp(int fd) {
  std::string buffer;
  std::string payload;
  bool close_after = false;
  char chunk[4096];
  while (!close_after) {
    if (SVTOX_FAIL_POINT_FAILS("server_read")) break;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // disconnect (possibly mid-frame) or stop()
    buffer.append(chunk, static_cast<std::size_t>(n));
    bytes_in_tcp_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    try {
      while (!close_after &&
             net::extract_frame(buffer, payload, net::kMaxFrameBytes)) {
        // A garbage length prefix that decodes small just yields a payload
        // that fails JSON parsing -- an error reply, connection kept. Only
        // an oversized announcement is unrecoverable (the body is still in
        // flight with no way to resynchronize) and lands in the catch.
        Json reply;
        try {
          reply = dispatch(Json::parse(payload), close_after);
        } catch (const Error& e) {
          reply = error_reply(e.what(), to_string(e.code()));
        } catch (const std::exception& e) {
          reply = error_reply(e.what(), "contract");
        }
        std::string wire;
        net::encode_frame(wire, reply.dump());
        bytes_out_tcp_.fetch_add(wire.size(), std::memory_order_relaxed);
        if (SVTOX_FAIL_POINT_FAILS("server_write") || !write_all(fd, wire)) {
          close_after = true;
        }
      }
    } catch (const Error&) {
      std::string wire;
      net::encode_frame(wire, error_reply("frame exceeds 1 MiB", "parse").dump());
      bytes_out_tcp_.fetch_add(wire.size(), std::memory_order_relaxed);
      write_all(fd, wire);
      break;
    }
  }
  finish_connection(fd);
}

ServerNetStats Server::net_stats() const {
  ServerNetStats out;
  out.bytes_in_unix = bytes_in_unix_.load(std::memory_order_relaxed);
  out.bytes_out_unix = bytes_out_unix_.load(std::memory_order_relaxed);
  out.bytes_in_tcp = bytes_in_tcp_.load(std::memory_order_relaxed);
  out.bytes_out_tcp = bytes_out_tcp_.load(std::memory_order_relaxed);
  out.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  out.accepted = accepted_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.connections = client_fds_.size();
  }
  return out;
}

Json Server::dispatch(const Json& request, bool& close_after) {
  const std::string cmd =
      request.get("cmd") != nullptr ? request.get("cmd")->as_string() : "";
  if (cmd == "submit") {
    // The spec is the request minus the routing key.
    Json spec_json = Json::object();
    for (const auto& [key, value] : request.as_object()) {
      if (key != "cmd") spec_json.set(key, value);
    }
    const std::optional<JobId> id =
        scheduler_.try_submit(job_spec_from_json(spec_json));
    if (!id) {
      // Explicit admission failure; clients retry with backoff.
      return error_reply("job queue is full; retry later", "busy");
    }
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("job", *id);
    return reply;
  }

  if (cmd == "status" || cmd == "result" || cmd == "cancel") {
    const Json* job = request.get("job");
    if (job == nullptr || !job->is_number()) {
      return error_reply("'" + cmd + "' needs a numeric 'job' id");
    }
    const JobId id = static_cast<JobId>(job->as_int());
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("job", id);
    if (cmd == "status") {
      reply.set("status", to_string(scheduler_.status(id)));
    } else if (cmd == "result") {
      const bool include_solution =
          request.get("solution") == nullptr || request.get("solution")->as_bool(true);
      scheduler_.status(id);  // throws early for unknown ids
      const JobResult result = scheduler_.wait(id);
      const Json result_json = job_result_to_json(result, include_solution);
      for (const auto& [key, value] : result_json.as_object()) {
        reply.set(key, value);
      }
    } else {
      reply.set("cancelled", scheduler_.cancel(id));
    }
    return reply;
  }

  if (cmd == "stats") {
    const SchedulerStats stats = scheduler_.stats();
    Json jobs = Json::object();
    jobs.set("submitted", stats.submitted);
    jobs.set("completed", stats.completed);
    jobs.set("failed", stats.failed);
    jobs.set("cancelled", stats.cancelled);
    jobs.set("executed", stats.executed);
    jobs.set("retried", stats.retried);
    jobs.set("adopted", stats.jobs_adopted);
    jobs.set("queued", stats.queued);
    jobs.set("running", stats.running);
    jobs.set("workers", stats.workers);
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("jobs", jobs);
    reply.set("cache", cache_stats_json(stats.cache));
    Json::Array shards;
    for (const CacheStats& shard : scheduler_.cache().shard_stats()) {
      shards.push_back(cache_stats_json(shard));
    }
    reply.set("cache_shards", Json(std::move(shards)));
    if (const DistributedCache* dist = scheduler_.dist_cache()) {
      const DistCacheStats d = dist->stats();
      Json dist_json = Json::object();
      dist_json.set("remote_hits", d.remote_hits);
      dist_json.set("remote_misses", d.remote_misses);
      dist_json.set("remote_publishes", d.remote_publishes);
      dist_json.set("remote_abandons", d.remote_abandons);
      dist_json.set("peer_failures", d.peer_failures);
      dist_json.set("replica_fallbacks", d.replica_fallbacks);
      reply.set("dist_cache", dist_json);
    }
    if (const Cluster* cluster = scheduler_.cluster()) {
      Json cluster_json = Json::object();
      cluster_json.set("self", cluster->self());
      cluster_json.set("epoch", cluster->epoch());
      Json::Array members;
      for (const std::string& member : cluster->members()) {
        members.push_back(Json(member));
      }
      cluster_json.set("members", Json(std::move(members)));
      Json::Array peers;
      for (const PeerHealthSnapshot& peer : cluster->health_snapshot()) {
        Json peer_json = Json::object();
        peer_json.set("member", peer.member);
        peer_json.set("health", peer_health_name(peer.health));
        peer_json.set("latency_s", peer.latency_s);
        peer_json.set("since_ok_s", peer.since_ok_s);
        peer_json.set("failures", peer.failures);
        peers.push_back(std::move(peer_json));
      }
      cluster_json.set("peers", Json(std::move(peers)));
      reply.set("cluster", cluster_json);
    }
    const ServerNetStats net = net_stats();
    Json net_json = Json::object();
    net_json.set("bytes_in_unix", net.bytes_in_unix);
    net_json.set("bytes_out_unix", net.bytes_out_unix);
    net_json.set("bytes_in_tcp", net.bytes_in_tcp);
    net_json.set("bytes_out_tcp", net.bytes_out_tcp);
    net_json.set("busy_rejections", net.busy_rejections);
    net_json.set("accepted", net.accepted);
    net_json.set("connections", net.connections);
    reply.set("net", net_json);
    return reply;
  }

  if (cmd == "metrics") {
    const SchedulerStats stats = scheduler_.stats();
    const std::vector<CacheStats> shards = scheduler_.cache().shard_stats();
    DistCacheStats dist_stats;
    const DistributedCache* dist = scheduler_.dist_cache();
    if (dist != nullptr) dist_stats = dist->stats();
    std::vector<PeerHealthSnapshot> peers;
    if (const Cluster* cluster = scheduler_.cluster()) {
      peers = cluster->health_snapshot();
    }
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("metrics", render_prometheus(stats, shards,
                                           dist != nullptr ? &dist_stats : nullptr,
                                           net_stats(), &peers));
    return reply;
  }

  if (cmd == "checkpoint_fetch") {
    const Json* key = request.get("key");
    if (key == nullptr || !key->is_string()) {
      return error_reply("'checkpoint_fetch' needs a string 'key'");
    }
    const std::string& name = key->as_string();
    // Cache keys are three 16-digit hex words joined by dots; anything
    // else (path separators in particular) is rejected outright.
    if (name.empty() || name.size() > 128 ||
        name.find_first_not_of("0123456789abcdef.") != std::string::npos) {
      return error_reply("invalid checkpoint key");
    }
    Json reply = Json::object();
    reply.set("ok", true);
    bool found = false;
    const std::string& dir = scheduler_.checkpoint_dir();
    if (!dir.empty()) {
      std::ifstream in(dir + "/" + name + ".ckpt");
      if (in) {
        std::ostringstream text;
        text << in.rdbuf();
        reply.set("checkpoint", text.str());
        found = true;
      }
    }
    reply.set("found", found);
    return reply;
  }

  if (cmd == "cache_fetch_or_lock") {
    const Json* key = request.get("key");
    if (key == nullptr || !key->is_string()) {
      return error_reply("'cache_fetch_or_lock' needs a string 'key'");
    }
    Json reply = Json::object();
    reply.set("ok", true);
    // Blocks while this shard has an inflight solve for the key: a remote
    // caller parking here until the local publish IS the cluster-wide
    // dedup. A miss makes the caller this shard's inflight owner -- it
    // owes a cache_publish or cache_abandon. `wait_s` bounds the park so a
    // crashed owner degrades the caller to a duplicate solve, not a hang.
    const Json* wait = request.get("wait_s");
    const double wait_s = wait != nullptr ? wait->as_number(0.0) : 0.0;
    if (std::optional<JobResult> hit =
            scheduler_.cache().fetch_or_lock(key->as_string(), wait_s)) {
      reply.set("hit", true);
      reply.set("result", job_result_to_json(*hit, /*include_solution=*/true));
    } else {
      reply.set("hit", false);
    }
    return reply;
  }

  if (cmd == "cache_publish" || cmd == "cache_abandon") {
    const Json* key = request.get("key");
    if (key == nullptr || !key->is_string()) {
      return error_reply("'" + cmd + "' needs a string 'key'");
    }
    if (cmd == "cache_publish") {
      const Json* payload = request.get("result");
      if (payload == nullptr || !payload->is_object()) {
        return error_reply("'cache_publish' needs a 'result' object");
      }
      scheduler_.cache().publish(key->as_string(), job_result_from_json(*payload));
    } else {
      scheduler_.cache().abandon(key->as_string());
    }
    Json reply = Json::object();
    reply.set("ok", true);
    return reply;
  }

  if (cmd == "ping") {
    // The heartbeat probe: deliberately cheap (no scheduler locks) so a
    // loaded daemon still answers within the suspect window.
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("pong", true);
    if (const Cluster* cluster = scheduler_.cluster()) {
      reply.set("self", cluster->self());
      reply.set("epoch", cluster->epoch());
    }
    return reply;
  }

  if (cmd == "cluster_reload") {
    Cluster* cluster = scheduler_.cluster();
    if (cluster == nullptr) {
      return error_reply("daemon is not running in cluster mode");
    }
    bool changed = false;
    const Json* members = request.get("members");
    if (members != nullptr && members->is_array()) {
      std::vector<std::string> list;
      for (const Json& member : members->as_array()) {
        if (!member.is_string()) {
          return error_reply("'members' must be an array of host:port strings");
        }
        list.push_back(member.as_string());
      }
      changed = cluster->reload(std::move(list));
    } else {
      changed = cluster->reload_from_file();
    }
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("changed", changed);
    reply.set("epoch", cluster->epoch());
    Json::Array list;
    for (const std::string& member : cluster->members()) {
      list.push_back(Json(member));
    }
    reply.set("members", Json(std::move(list)));
    return reply;
  }

  if (cmd == "adopt_jobs") {
    const Json* force = request.get("force");
    const std::size_t adopted =
        scheduler_.adopt_orphaned_jobs(force != nullptr && force->as_bool(false));
    Json reply = Json::object();
    reply.set("ok", true);
    reply.set("adopted", adopted);
    return reply;
  }

  if (cmd == "failpoints") {
    // Chaos control plane: reconfigure the process-wide fail points at
    // runtime (the chaos harness injects partitions this way). Only
    // meaningful in instrumented builds; Release compiles the hooks out.
    if (!FailPoints::compiled_in()) {
      return error_reply("fail points are not compiled into this build");
    }
    const Json* spec = request.get("spec");
    if (spec == nullptr || !spec->is_string()) {
      return error_reply("'failpoints' needs a string 'spec'");
    }
    if (spec->as_string().empty()) {
      FailPoints::instance().clear();
    } else {
      FailPoints::instance().configure(spec->as_string());
    }
    Json reply = Json::object();
    reply.set("ok", true);
    return reply;
  }

  if (cmd == "shutdown") {
    const Json* drain = request.get("drain");
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
      shutdown_drain_ = drain == nullptr ? true : drain->as_bool(true);
    }
    shutdown_cv_.notify_all();
    close_after = true;
    Json reply = Json::object();
    reply.set("ok", true);
    return reply;
  }

  return error_reply(cmd.empty() ? "missing 'cmd'" : "unknown cmd '" + cmd + "'");
}

bool Server::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_ || stopping_; });
  return shutdown_drain_;
}

void Server::stop() {
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    shutdown_requested_ = true;
    // close() alone does NOT wake a thread blocked in accept() on Linux;
    // shutdown() does. The fd itself is closed after the acceptor joins.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (tcp_listener_.valid()) tcp_listener_.shutdown_now();
    // Wake blocked reads; the handler threads close the fds themselves.
    for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(handlers_);
  }
  shutdown_cv_.notify_all();
  // Belt and braces for platforms where shutdown() leaves accept() parked:
  // a throwaway connection forces it to return (the loop then sees
  // stopping_ and exits).
  const int wake = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (wake >= 0) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof addr.sun_path - 1);
    ::connect(wake, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::close(wake);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (tcp_acceptor_.joinable()) tcp_acceptor_.join();
  for (std::thread& handler : handlers) {
    if (handler.joinable()) handler.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (const int fd : client_fds_) ::close(fd);
    client_fds_.clear();
  }
  ::unlink(options_.socket_path.c_str());
}

}  // namespace svtox::svc
