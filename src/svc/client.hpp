// Client side of the svtoxd wire protocol: a blocking one-request /
// one-reply NDJSON channel over a Unix-domain socket, plus the typed
// convenience calls `svtox batch` uses.
#pragma once

#include <optional>
#include <string>

#include "svc/job.hpp"

namespace svtox::svc {

class Client {
 public:
  /// Connects to a running svtoxd; throws ContractError when the socket
  /// cannot be reached.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Raw round trip: sends one request object, returns the reply object.
  /// Throws ContractError on connection loss or a malformed reply.
  Json request(const Json& request_json);

  // --- Typed wrappers ---------------------------------------------------
  /// Each throws ContractError when the daemon replies {"ok":false}.
  std::uint64_t submit(const JobSpec& spec);
  std::string status(std::uint64_t job);
  JobResult result(std::uint64_t job, bool include_solution = true);  ///< Blocks.
  bool cancel(std::uint64_t job);
  Json stats();
  void shutdown(bool drain = true);

  /// True when a daemon accepts connections on `socket_path`.
  static bool ping(const std::string& socket_path);

 private:
  int fd_ = -1;
  std::string pending_;  ///< Bytes read past the last reply's newline.
};

}  // namespace svtox::svc
