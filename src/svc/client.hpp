// Client side of the svtoxd wire protocol: a blocking one-request /
// one-reply channel, plus the typed convenience calls `svtox batch` uses.
//
// Two transports behind one address string:
//   "/path/to.sock"      -- NDJSON over a Unix-domain socket.
//   "tcp://host:port"    -- length-prefixed frames over TCP (src/net).
//
// Transport failures (connect refused, connection dropped mid-round-trip)
// surface as util::Error(kIo) and are retried internally with exponential
// backoff + jitter and a fresh connection, up to ClientOptions::
// max_attempts -- this covers a TCP daemon that has not bound its port
// yet (ECONNREFUSED) exactly like a missing Unix socket. Retrying a round
// trip whose request was already delivered gives *at-least-once*
// semantics: a resent "submit" may enqueue a second job (the scheduler's
// solution cache dedups the actual solve). Reply timeouts surface as
// Error(kTimeout) and are never retried -- the daemon may still be
// executing the request. A daemon at capacity replies error_code "busy";
// submit() retries those with the same backoff schedule.
#pragma once

#include <optional>
#include <string>

#include "svc/job.hpp"
#include "util/rng.hpp"

namespace svtox::svc {

struct ClientOptions {
  /// Total tries per connect/round-trip (1 = no retry).
  int max_attempts = 3;
  double backoff_initial_s = 0.05;  ///< First retry delay (doubled per try).
  double backoff_max_s = 2.0;       ///< Delay ceiling.
  /// Per-request reply timeout; 0 = wait forever. On expiry request()
  /// throws Error(kTimeout) and the connection is dropped (the next
  /// request reconnects).
  double request_timeout_s = 0.0;
  /// Per-attempt TCP connect(2) bound; 0 = the kernel default (which can
  /// be minutes against a blackholed host). Unix sockets connect
  /// instantly and ignore this.
  double connect_timeout_s = 0.0;
  /// Wall-clock budget across ALL attempts of one operation (the
  /// constructor's connect loop, or one request() including its retries);
  /// 0 = unbounded. When the budget runs out the last transport error is
  /// rethrown instead of sleeping through the rest of the backoff
  /// schedule -- `svtox stats` against a dead daemon fails fast.
  double total_deadline_s = 0.0;
};

class Client {
 public:
  /// Connects to a running svtoxd at `address` -- a Unix socket path or
  /// "tcp://host:port" -- with retry/backoff per `options`; throws
  /// Error(kIo) when the daemon cannot be reached.
  explicit Client(const std::string& address,
                  const ClientOptions& options = ClientOptions());
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Raw round trip: sends one request object, returns the reply object.
  /// Throws Error(kIo) when every attempt lost the connection,
  /// Error(kTimeout) when the reply timed out, ParseError on a malformed
  /// reply.
  Json request(const Json& request_json);

  // --- Typed wrappers ---------------------------------------------------
  /// Each throws ContractError when the daemon replies {"ok":false}.
  /// submit additionally retries "busy" rejections (admission control)
  /// with the backoff schedule before giving up.
  std::uint64_t submit(const JobSpec& spec);
  std::string status(std::uint64_t job);
  JobResult result(std::uint64_t job, bool include_solution = true);  ///< Blocks.
  bool cancel(std::uint64_t job);
  Json stats();
  void shutdown(bool drain = true);

  /// True when a daemon accepts connections on `address` (either form).
  static bool ping(const std::string& address);

  const std::string& address() const { return address_; }

 private:
  int connect_fd() const;
  void send_request(const std::string& payload);
  Json read_reply();
  void drop_connection();
  /// Sleeps the attempt's backoff delay, clipped to `cap_s` when >= 0.
  void backoff_sleep(int attempt, double cap_s = -1.0);

  ClientOptions options_;
  std::string address_;
  bool tcp_ = false;
  std::string tcp_host_;
  int tcp_port_ = 0;
  int fd_ = -1;
  std::string pending_;  ///< Bytes read past the last complete reply.
  Rng jitter_;           ///< Backoff jitter stream (seeded per client).
};

}  // namespace svtox::svc
