#include "svc/dist_cache.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace svtox::svc {

std::size_t DistributedCache::owner_count() const {
  const int replicas = std::max(0, cluster_.options().cache_replicas);
  return 1 + static_cast<std::size_t>(replicas);
}

std::optional<JobResult> DistributedCache::fetch_or_lock(const std::string& key) {
  if (std::optional<JobResult> local = local_.fetch_or_lock(key)) {
    return local;
  }
  // Local owner now. Walk the key's owner chain (primary, then replica
  // successors); the first reachable owner either serves a hit or grants
  // this node the cluster-wide in-flight lock.
  const std::vector<std::string> owners = cluster_.owners_of(key, owner_count());
  const double wait_s = cluster_.options().blocking_wait_s;
  Json request = Json::object();
  request.set("cmd", "cache_fetch_or_lock");
  request.set("key", key);
  if (wait_s > 0.0) request.set("wait_s", wait_s);
  for (std::size_t i = 0; i < owners.size(); ++i) {
    const std::string& owner = owners[i];
    // Self in the chain: this node's local cache IS that shard, and the
    // local fetch above already missed -- stop here and solve locally.
    if (cluster_.is_self(owner)) break;
    try {
      // Bound the park slightly past the server-side wait so a healthy
      // owner's timeout reply (a miss) wins over the client timeout.
      const Json reply =
          cluster_.request(owner, request, /*fresh_connection=*/true,
                           wait_s > 0.0 ? wait_s + 5.0 : 0.0);
      const Json* ok = reply.get("ok");
      if (ok == nullptr || !ok->as_bool(false)) {
        throw ContractError("owner shard rejected cache_fetch_or_lock");
      }
      if (i > 0) replica_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      const Json* hit = reply.get("hit");
      if (hit != nullptr && hit->as_bool(false)) {
        const Json* payload = reply.get("result");
        if (payload == nullptr) throw ContractError("cache hit without a result");
        JobResult result = job_result_from_json(*payload);
        result.cache_hit = true;
        // Fill the local LRU, clear our local inflight marker, wake local
        // waiters. cache_hit=true also keeps it off the local disk mirror.
        local_.publish(key, result);
        remote_hits_.fetch_add(1, std::memory_order_relaxed);
        return result;
      }
      // Cluster-wide miss: this node is now the owner at both levels, and
      // owes the publish/abandon to the member that granted the lock.
      remote_misses_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      remote_owned_[key] = owner;
      return std::nullopt;
    } catch (const std::exception& e) {
      peer_failures_.fetch_add(1, std::memory_order_relaxed);
      log_warn("distributed cache: owner " + owner + " unreachable for " + key +
               " (" + e.what() + ")" +
               (i + 1 < owners.size() && !cluster_.is_self(owners[i + 1])
                    ? "; trying next replica"
                    : "; degrading to local solve"));
    }
  }
  // Every remote owner failed (or the chain reached self): solve here.
  // Never wrong, only possibly duplicated work.
  return std::nullopt;
}

std::optional<std::string> DistributedCache::take_remote_ownership_back(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = remote_owned_.find(key);
  if (it == remote_owned_.end()) return std::nullopt;
  std::string member = std::move(it->second);
  remote_owned_.erase(it);
  return member;
}

void DistributedCache::publish(const std::string& key, const JobResult& result) {
  local_.publish(key, result);
  const std::optional<std::string> locked = take_remote_ownership_back(key);
  if (result.interrupted) {
    // A best-so-far incumbent is not canonical: release the remote lock
    // (promoting one of the owner's waiters) and replicate nothing.
    if (!locked) return;
    Json request = Json::object();
    request.set("cmd", "cache_abandon");
    request.set("key", key);
    try {
      cluster_.request(*locked, request);
      remote_abandons_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      peer_failures_.fetch_add(1, std::memory_order_relaxed);
      log_warn("distributed cache: abandon to owner failed for " + key + " (" +
               e.what() + ")");
    }
    return;
  }
  // Publish to the lock grantor first (it has parked fetchers), then to
  // the remaining owners in the chain for replication. Without a lock and
  // without replicas there is nothing owed remotely (pre-replication
  // behaviour preserved).
  std::vector<std::string> targets;
  if (locked) targets.push_back(*locked);
  if (owner_count() > 1) {
    for (const std::string& owner : cluster_.owners_of(key, owner_count())) {
      if (cluster_.is_self(owner)) continue;
      if (locked && owner == *locked) continue;
      targets.push_back(owner);
    }
  }
  if (targets.empty()) return;
  Json request = Json::object();
  request.set("cmd", "cache_publish");
  request.set("key", key);
  request.set("result", job_result_to_json(result, /*include_solution=*/true));
  for (const std::string& target : targets) {
    try {
      cluster_.request(target, request);
      remote_publishes_.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception& e) {
      peer_failures_.fetch_add(1, std::memory_order_relaxed);
      log_warn("distributed cache: publish to " + target + " failed for " +
               key + " (" + e.what() + ")");
    }
  }
}

void DistributedCache::abandon(const std::string& key) {
  local_.abandon(key);
  const std::optional<std::string> locked = take_remote_ownership_back(key);
  if (!locked) return;
  Json request = Json::object();
  request.set("cmd", "cache_abandon");
  request.set("key", key);
  try {
    cluster_.request(*locked, request);
    remote_abandons_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    peer_failures_.fetch_add(1, std::memory_order_relaxed);
    log_warn("distributed cache: abandon to owner failed for " + key + " (" +
             e.what() + ")");
  }
}

DistCacheStats DistributedCache::stats() const {
  DistCacheStats out;
  out.remote_hits = remote_hits_.load(std::memory_order_relaxed);
  out.remote_misses = remote_misses_.load(std::memory_order_relaxed);
  out.remote_publishes = remote_publishes_.load(std::memory_order_relaxed);
  out.remote_abandons = remote_abandons_.load(std::memory_order_relaxed);
  out.peer_failures = peer_failures_.load(std::memory_order_relaxed);
  out.replica_fallbacks = replica_fallbacks_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace svtox::svc
