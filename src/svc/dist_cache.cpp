#include "svc/dist_cache.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace svtox::svc {

std::optional<JobResult> DistributedCache::fetch_or_lock(const std::string& key) {
  if (std::optional<JobResult> local = local_.fetch_or_lock(key)) {
    return local;
  }
  // Local owner now. If the ring says a peer owns this key, consult it;
  // the RPC blocks while the owner has an inflight solve (cluster dedup).
  const std::string& owner = cluster_.owner_of(key);
  if (cluster_.is_self(owner)) return std::nullopt;
  Json request = Json::object();
  request.set("cmd", "cache_fetch_or_lock");
  request.set("key", key);
  try {
    const Json reply = cluster_.request(owner, request, /*fresh_connection=*/true);
    const Json* ok = reply.get("ok");
    if (ok == nullptr || !ok->as_bool(false)) {
      throw ContractError("owner shard rejected cache_fetch_or_lock");
    }
    const Json* hit = reply.get("hit");
    if (hit != nullptr && hit->as_bool(false)) {
      const Json* payload = reply.get("result");
      if (payload == nullptr) throw ContractError("cache hit without a result");
      JobResult result = job_result_from_json(*payload);
      result.cache_hit = true;
      // Fill the local LRU, clear our local inflight marker, wake local
      // waiters. cache_hit=true also keeps it off the local disk mirror.
      local_.publish(key, result);
      remote_hits_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    // Cluster-wide miss: this node is now the owner at both levels.
    remote_misses_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    remote_owned_.insert(key);
    return std::nullopt;
  } catch (const std::exception& e) {
    // Degrade to local-only ownership: solve here. Never wrong, only
    // possibly duplicated work.
    peer_failures_.fetch_add(1, std::memory_order_relaxed);
    log_warn("distributed cache: owner " + owner + " unreachable for " + key +
             " (" + e.what() + "); degrading to local solve");
    return std::nullopt;
  }
}

bool DistributedCache::take_remote_ownership_back(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_owned_.erase(key) > 0;
}

void DistributedCache::publish(const std::string& key, const JobResult& result) {
  local_.publish(key, result);
  if (!take_remote_ownership_back(key)) return;
  Json request = Json::object();
  request.set("cmd", result.interrupted ? "cache_abandon" : "cache_publish");
  request.set("key", key);
  if (!result.interrupted) {
    request.set("result", job_result_to_json(result, /*include_solution=*/true));
  }
  try {
    cluster_.request(cluster_.owner_of(key), request);
    (result.interrupted ? remote_abandons_ : remote_publishes_)
        .fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    peer_failures_.fetch_add(1, std::memory_order_relaxed);
    log_warn("distributed cache: publish to owner failed for " + key + " (" +
             e.what() + ")");
  }
}

void DistributedCache::abandon(const std::string& key) {
  local_.abandon(key);
  if (!take_remote_ownership_back(key)) return;
  Json request = Json::object();
  request.set("cmd", "cache_abandon");
  request.set("key", key);
  try {
    cluster_.request(cluster_.owner_of(key), request);
    remote_abandons_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    peer_failures_.fetch_add(1, std::memory_order_relaxed);
    log_warn("distributed cache: abandon to owner failed for " + key + " (" +
             e.what() + ")");
  }
}

DistCacheStats DistributedCache::stats() const {
  DistCacheStats out;
  out.remote_hits = remote_hits_.load(std::memory_order_relaxed);
  out.remote_misses = remote_misses_.load(std::memory_order_relaxed);
  out.remote_publishes = remote_publishes_.load(std::memory_order_relaxed);
  out.remote_abandons = remote_abandons_.load(std::memory_order_relaxed);
  out.peer_failures = peer_failures_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace svtox::svc
