// Consistent-hash ring over cluster member addresses.
//
// Each member contributes `vnodes` points on a 64-bit ring, at
// FNV-1a(member, vnode_index); a key is owned by the member whose point is
// the first at or after FNV-1a(key), wrapping at the top. Two properties
// the distributed cache relies on:
//
//  * Agreement needs only *set* equality: points are derived from the
//    member address strings themselves, so every node that knows the same
//    member set computes the same ring regardless of the order its
//    --peers list spelled them in.
//  * Virtual nodes smooth the key distribution, so one member does not
//    own a disproportionate arc just because its single hash landed badly.
//
// A HashRing instance is immutable after construction; dynamic membership
// is layered on top by svc::Cluster, which swaps whole ring snapshots
// behind an epoch counter. `owners(key, r)` returns the successor list
// (primary plus the next r-1 distinct members walking the ring), which the
// distributed cache uses for replication and owner-failure fallback.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace svtox::svc {

class HashRing {
 public:
  /// Throws ContractError when `members` is empty, contains duplicates, or
  /// vnodes < 1.
  explicit HashRing(std::vector<std::string> members, int vnodes = 64);

  /// The member owning `key`. Deterministic across processes for equal
  /// member sets.
  const std::string& owner(const std::string& key) const;

  /// The first min(r, size()) distinct members at or after FNV-1a(key),
  /// walking the ring clockwise: owners(key, r)[0] == owner(key), and the
  /// rest are the replica successors in deterministic order. Throws
  /// ContractError when r < 1.
  std::vector<std::string> owners(const std::string& key, std::size_t r) const;

  const std::vector<std::string>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }

 private:
  std::vector<std::string> members_;
  /// (point, member index), sorted by point; ties broken by the member
  /// string so the ring is independent of input order.
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

}  // namespace svtox::svc
