// Bounded MPMC priority queue of job ids.
//
// The queue carries only (priority, id); the scheduler owns the job
// records. Ordering is highest-priority-first, FIFO within a priority
// (via a monotonically increasing sequence number). push() blocks while
// the queue is at capacity -- backpressure toward submitters -- and pop()
// blocks until an item arrives or the queue is closed and drained.
// remove() supports cancelling a still-queued job in O(log n).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace svtox::svc {

using JobId = std::uint64_t;

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Blocks while full. Returns false (and drops the item) once closed.
  bool push(JobId id, int priority);
  /// Non-blocking push; false when full or closed.
  bool try_push(JobId id, int priority);

  /// Blocks until an item is available. Returns nullopt once the queue is
  /// closed *and* empty, which is the workers' exit signal.
  std::optional<JobId> pop();

  /// Removes a still-queued id; false when it was already popped (running
  /// or finished) or never queued.
  bool remove(JobId id);

  /// No further pushes succeed; pops drain the backlog then return
  /// nullopt. Idempotent.
  void close();
  /// Drops every queued item (used by non-draining shutdown); the ids are
  /// returned so the scheduler can mark them cancelled.
  std::vector<JobId> clear();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  // Ordered by (-priority, seq): begin() is the highest priority, oldest.
  using Key = std::tuple<int, std::uint64_t>;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::size_t capacity_;
  bool closed_ = false;
  std::uint64_t next_seq_ = 0;
  std::set<std::pair<Key, JobId>> items_;
  std::unordered_map<JobId, Key> index_;
};

}  // namespace svtox::svc
