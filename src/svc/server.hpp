// Unix-domain-socket front end of the scheduler: the `svtoxd` daemon's
// listener. Speaks newline-delimited JSON, one request object per line,
// one response object per line:
//
//   -> {"cmd":"submit","circuit":"c432","method":"heu1","penalty":5}
//   <- {"ok":true,"job":1}
//   -> {"cmd":"status","job":1}
//   <- {"ok":true,"job":1,"status":"running"}
//   -> {"cmd":"result","job":1}              // blocks until terminal
//   <- {"ok":true,"job":1,"status":"done","leakage_ua":...,"solution":"..."}
//   -> {"cmd":"cancel","job":1}
//   <- {"ok":true,"job":1,"cancelled":true}
//   -> {"cmd":"stats"}
//   <- {"ok":true,"jobs":{...},"cache":{...}}
//   -> {"cmd":"shutdown","drain":true}
//   <- {"ok":true}
//
// Every connection gets its own handler thread (blocking `result` waits
// only park that connection). Malformed requests produce
// {"ok":false,"error":"..."} and keep the connection open; the daemon only
// dies on `shutdown` or a signal.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/scheduler.hpp"

namespace svtox::svc {

class Server {
 public:
  /// Binds and listens on `socket_path` (unlinking a stale socket first);
  /// throws ContractError when the path cannot be bound.
  Server(Scheduler& scheduler, std::string socket_path);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept loop.
  void start();

  /// Blocks until a client issued `shutdown` (returns its requested drain
  /// mode) or stop() was called from another thread (returns true).
  bool wait_for_shutdown();

  /// Stops accepting, disconnects clients, joins all threads, removes the
  /// socket file. Idempotent.
  void stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// One request -> one response; `close_after` asks the caller to end the
  /// connection (shutdown acknowledges first, then tears down).
  Json dispatch(const Json& request, bool& close_after);

  Scheduler& scheduler_;
  std::string socket_path_;
  int listen_fd_ = -1;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool shutdown_drain_ = true;
  bool stopping_ = false;
  std::vector<int> client_fds_;
  std::vector<std::thread> handlers_;
  std::thread acceptor_;
};

}  // namespace svtox::svc
