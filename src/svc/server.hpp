// Network front end of the scheduler: the `svtoxd` daemon's listeners.
//
// Two transports, one dispatcher:
//  * Unix-domain socket -- newline-delimited JSON, one request object per
//    line, one response object per line.
//  * TCP (optional, --listen-tcp) -- the same JSON objects wrapped in
//    4-byte length-prefixed frames (src/net), which is what peers in a
//    --peers cluster speak. The per-request size cap and the JSON depth
//    guard apply identically on both.
//
//   -> {"cmd":"submit","circuit":"c432","method":"heu1","penalty":5}
//   <- {"ok":true,"job":1}
//   -> {"cmd":"status","job":1}
//   <- {"ok":true,"job":1,"status":"running"}
//   -> {"cmd":"result","job":1}              // blocks until terminal
//   <- {"ok":true,"job":1,"status":"done","leakage_ua":...,"solution":"..."}
//   -> {"cmd":"cancel","job":1}
//   <- {"ok":true,"job":1,"cancelled":true}
//   -> {"cmd":"stats"}
//   <- {"ok":true,"jobs":{...},"cache":{...},"cache_shards":[...],"net":{...}}
//   -> {"cmd":"metrics"}
//   <- {"ok":true,"metrics":"# HELP svtox_jobs_total ..."}   // Prometheus text
//   -> {"cmd":"shutdown","drain":true}
//   <- {"ok":true}
//
// Cluster-internal requests (issued by peer daemons, not end users):
// `cache_fetch_or_lock` / `cache_publish` / `cache_abandon` operate on
// this daemon's LOCAL solution cache (the two-level routing lives in
// svc::DistributedCache on the caller), and `checkpoint_fetch` serves the
// latest on-disk search checkpoint for a job key (subtree work-stealing).
//
// Every connection gets its own handler thread (blocking `result` waits
// only park that connection). Admission control bounds those threads:
// past ServerOptions::max_connections, a fresh connection is answered
// with a retryable "busy" error and closed -- never silently hung.
// Malformed requests produce {"ok":false,"error":"..."} and keep the
// connection open; unrecoverable framing (an oversized frame
// announcement, a mid-frame disconnect) drops only that connection. The
// daemon itself only dies on `shutdown` or a signal.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/listener.hpp"
#include "svc/metrics.hpp"
#include "svc/scheduler.hpp"

namespace svtox::svc {

struct ServerOptions {
  std::string socket_path;
  /// TCP front end: -1 = disabled, 0 = bind an ephemeral port (tcp_port()
  /// reports the actual one), otherwise the port to bind on tcp_host.
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;
  /// Admission control across both transports: a connection beyond this
  /// many concurrently open ones gets a "busy" error and a close.
  std::size_t max_connections = 256;
};

class Server {
 public:
  /// Unix-only convenience: binds `socket_path`, no TCP listener.
  Server(Scheduler& scheduler, std::string socket_path);

  /// Binds the Unix socket (unlinking a stale one first) and, when
  /// options.tcp_port >= 0, the TCP listener too; throws ContractError /
  /// Error(kIo) when either cannot be bound.
  Server(Scheduler& scheduler, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept loop(s).
  void start();

  /// Blocks until a client issued `shutdown` (returns its requested drain
  /// mode) or stop() was called from another thread (returns true).
  bool wait_for_shutdown();

  /// Stops accepting, disconnects clients, joins all threads, removes the
  /// socket file. Idempotent.
  void stop();

  const std::string& socket_path() const { return options_.socket_path; }
  /// The bound TCP port, or -1 when the TCP front end is disabled.
  int tcp_port() const { return tcp_listener_.valid() ? tcp_listener_.port() : -1; }
  /// "host:port" of the TCP listener; empty when disabled.
  std::string tcp_address() const {
    return tcp_listener_.valid() ? tcp_listener_.address() : std::string();
  }

 private:
  void accept_loop();
  void accept_loop_tcp();
  /// Spawns the handler for an accepted fd, or rejects it ("busy") at
  /// capacity. Returns false when the server is stopping.
  bool admit(int fd, bool tcp);
  void handle_connection(int fd);
  void handle_connection_tcp(int fd);
  void finish_connection(int fd);
  /// One request -> one response; `close_after` asks the caller to end the
  /// connection (shutdown acknowledges first, then tears down).
  Json dispatch(const Json& request, bool& close_after);
  ServerNetStats net_stats() const;

  Scheduler& scheduler_;
  ServerOptions options_;
  int listen_fd_ = -1;
  net::Listener tcp_listener_;

  std::atomic<std::uint64_t> bytes_in_unix_{0};
  std::atomic<std::uint64_t> bytes_out_unix_{0};
  std::atomic<std::uint64_t> bytes_in_tcp_{0};
  std::atomic<std::uint64_t> bytes_out_tcp_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> accepted_{0};

  mutable std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool shutdown_drain_ = true;
  bool stopping_ = false;
  std::vector<int> client_fds_;
  std::vector<std::thread> handlers_;
  std::thread acceptor_;
  std::thread tcp_acceptor_;
};

}  // namespace svtox::svc
