#include "svc/hash_ring.hpp"

#include <algorithm>

#include "svc/fingerprint.hpp"
#include "util/error.hpp"

namespace svtox::svc {

HashRing::HashRing(std::vector<std::string> members, int vnodes)
    : members_(std::move(members)) {
  if (members_.empty()) throw ContractError("hash ring needs at least one member");
  if (vnodes < 1) throw ContractError("hash ring vnodes must be >= 1");
  {
    std::vector<std::string> sorted = members_;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw ContractError("hash ring members must be unique");
    }
  }
  points_.reserve(members_.size() * static_cast<std::size_t>(vnodes));
  for (std::size_t m = 0; m < members_.size(); ++m) {
    for (int v = 0; v < vnodes; ++v) {
      const std::uint64_t point =
          Fnv().str(members_[m]).u64(static_cast<std::uint64_t>(v)).value();
      points_.emplace_back(point, m);
    }
  }
  std::sort(points_.begin(), points_.end(),
            [this](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              // A 64-bit collision between members is astronomically
              // unlikely, but break it by address so every node agrees.
              return members_[a.second] < members_[b.second];
            });
}

const std::string& HashRing::owner(const std::string& key) const {
  const std::uint64_t h = Fnv().str(key).value();
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const auto& point, std::uint64_t value) { return point.first < value; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return members_[it->second];
}

std::vector<std::string> HashRing::owners(const std::string& key,
                                          std::size_t r) const {
  if (r < 1) throw ContractError("hash ring owners() needs r >= 1");
  const std::uint64_t h = Fnv().str(key).value();
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const auto& point, std::uint64_t value) { return point.first < value; });
  const std::size_t start =
      it == points_.end() ? 0 : static_cast<std::size_t>(it - points_.begin());
  const std::size_t want = std::min(r, members_.size());
  std::vector<std::string> out;
  out.reserve(want);
  std::vector<bool> taken(members_.size(), false);
  for (std::size_t step = 0; step < points_.size() && out.size() < want; ++step) {
    const std::size_t m = points_[(start + step) % points_.size()].second;
    if (taken[m]) continue;
    taken[m] = true;
    out.push_back(members_[m]);
  }
  return out;
}

}  // namespace svtox::svc
