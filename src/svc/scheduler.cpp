#include "svc/scheduler.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/optimizer.hpp"
#include "core/solution_io.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/benchmarks.hpp"
#include "opt/checkpoint.hpp"
#include "svc/dist_cache.hpp"
#include "svc/dist_search.hpp"
#include "svc/fingerprint.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/threads.hpp"

namespace svtox::svc {

namespace {

core::Method method_enum(const std::string& name) {
  if (name == "average") return core::Method::kAverageRandom;
  if (name == "state") return core::Method::kStateOnly;
  if (name == "vtstate") return core::Method::kVtState;
  if (name == "heu1") return core::Method::kHeu1;
  if (name == "heu2") return core::Method::kHeu2;
  if (name == "exact") return core::Method::kExact;
  throw ContractError("unknown method '" + name + "'");
}

/// Library identity of a spec: the four build knobs.
std::string library_key(const JobSpec& spec) {
  std::string key = "lib";
  key += spec.nitrided ? ":nitrided" : ":nominal";
  if (spec.two_point) key += ":two_point";
  if (spec.uniform_stack) key += ":uniform_stack";
  if (spec.vt_only) key += ":vt_only";
  return key;
}

}  // namespace

// --------------------------------------------------------------------------
// Job record
// --------------------------------------------------------------------------

struct Scheduler::JobRecord {
  JobId id = 0;
  JobSpec spec;
  std::atomic<JobStatus> status{JobStatus::kQueued};
  /// The cooperative token seen by the search (SearchOptions::cancel).
  std::atomic<bool> cancel{false};
  std::atomic<bool> user_cancelled{false};
  std::atomic<bool> deadline_fired{false};
  /// Set by an interrupting shutdown: the job stops cooperatively and
  /// reports kCancelled with a resume hint instead of a deadline message.
  std::atomic<bool> shutdown_fired{false};
  JobResult result;  ///< Written under Scheduler::mu_ before status flips.
};

// --------------------------------------------------------------------------
// Shared resource pool (libraries, netlists) with build dedup
// --------------------------------------------------------------------------

class Scheduler::ResourcePool {
 public:
  struct LibraryEntry {
    liberty::Library library;
    std::uint64_t fp = 0;
  };
  struct CircuitEntry {
    std::shared_ptr<const LibraryEntry> library;  ///< Keeps the lib alive.
    netlist::Netlist netlist;
    std::uint64_t fp = 0;
    CircuitEntry(std::shared_ptr<const LibraryEntry> lib, netlist::Netlist nl)
        : library(std::move(lib)), netlist(std::move(nl)) {}
  };

  std::shared_ptr<const LibraryEntry> library(const JobSpec& spec) {
    return get<LibraryEntry>(libraries_, library_key(spec), [&spec] {
      liberty::LibraryOptions options;
      options.variant_options.four_point = !spec.two_point;
      options.variant_options.uniform_stack = spec.uniform_stack;
      options.variant_options.vt_only = spec.vt_only;
      const model::TechParams& tech = spec.nitrided ? model::TechParams::nitrided()
                                                    : model::TechParams::nominal();
      auto entry = std::make_shared<LibraryEntry>(
          LibraryEntry{liberty::Library::build(tech, options), 0});
      entry->fp = fingerprint_library(entry->library);
      return entry;
    });
  }

  std::shared_ptr<const CircuitEntry> circuit(
      const std::shared_ptr<const LibraryEntry>& lib, const JobSpec& spec) {
    std::string key = library_key(spec) + "|";
    if (!spec.circuit.empty()) {
      key += "circuit:" + spec.circuit;
    } else if (!spec.bench_text.empty()) {
      // Inline cones are content-addressed outright; the netlist is named
      // by the same hash, so identical cone text -- wherever it came from
      // -- shares one pool entry, one fingerprint, one cache key.
      key += "benchtext:" + hex64(Fnv().str(spec.bench_text).value());
    } else {
      // Content-address the file so an edited netlist misses the pool.
      std::ifstream in(spec.bench_path);
      if (!in) {
        // kIo: a transient filesystem hiccup is retryable (JobSpec::retries).
        throw Error(ErrorCode::kIo,
                    "cannot read bench file '" + spec.bench_path + "'");
      }
      std::ostringstream text;
      text << in.rdbuf();
      key += "bench:" + hex64(Fnv().str(text.str()).value());
    }
    return get<CircuitEntry>(circuits_, key, [&lib, &spec] {
      netlist::Netlist netlist = [&]() {
        if (!spec.circuit.empty()) {
          return netlist::make_benchmark(spec.circuit, lib->library);
        }
        if (!spec.bench_text.empty()) {
          const std::string name =
              "bt" + hex64(Fnv().str(spec.bench_text).value());
          return netlist::read_bench(spec.bench_text, name, lib->library, name);
        }
        return netlist::read_bench_file(spec.bench_path, lib->library);
      }();
      auto entry = std::make_shared<CircuitEntry>(lib, std::move(netlist));
      entry->fp = fingerprint_netlist(entry->netlist);
      return entry;
    });
  }

 private:
  template <typename E>
  struct Slot {
    std::shared_ptr<const E> value;
    std::exception_ptr error;
    bool ready = false;
  };
  template <typename E>
  using SlotMap = std::map<std::string, std::shared_ptr<Slot<E>>>;

  /// Returns the pooled entry, building it via `build` exactly once per
  /// key; concurrent first requests block on the builder instead of
  /// duplicating a (potentially expensive) characterization. A failed
  /// build propagates to every waiter and clears the slot so a later
  /// request can retry.
  template <typename E, typename Build>
  std::shared_ptr<const E> get(SlotMap<E>& slots, const std::string& key,
                               Build build) {
    std::shared_ptr<Slot<E>> slot;
    bool builder = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = slots.find(key);
      if (it == slots.end()) {
        slot = std::make_shared<Slot<E>>();
        slots.emplace(key, slot);
        builder = true;
      } else {
        slot = it->second;
      }
      if (!builder) {
        cv_.wait(lock, [&slot] { return slot->ready; });
        if (slot->error) std::rethrow_exception(slot->error);
        return slot->value;
      }
    }
    try {
      std::shared_ptr<const E> value = build();
      std::lock_guard<std::mutex> lock(mu_);
      slot->value = value;
      slot->ready = true;
      cv_.notify_all();
      return value;
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      slot->error = std::current_exception();
      slot->ready = true;
      slots.erase(key);  // allow retry by a later job
      cv_.notify_all();
      throw;
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  SlotMap<LibraryEntry> libraries_;
  SlotMap<CircuitEntry> circuits_;
};

// --------------------------------------------------------------------------
// Per-worker optimizer contexts
// --------------------------------------------------------------------------

class Scheduler::WorkerState {
 public:
  explicit WorkerState(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

  /// The worker's persistent optimizer for this circuit; holds the
  /// per-penalty AssignmentProblems and Monte-Carlo baselines across jobs.
  core::StandbyOptimizer& optimizer_for(
      const std::shared_ptr<const ResourcePool::CircuitEntry>& circuit) {
    const std::string key = hex64(circuit->library->fp) + hex64(circuit->fp);
    auto it = contexts_.find(key);
    if (it == contexts_.end()) {
      while (contexts_.size() >= capacity_) evict_oldest();
      Context context;
      context.circuit = circuit;
      context.optimizer = std::make_unique<core::StandbyOptimizer>(circuit->netlist);
      it = contexts_.emplace(key, std::move(context)).first;
    }
    it->second.last_use = ++tick_;
    return *it->second.optimizer;
  }

 private:
  struct Context {
    std::shared_ptr<const ResourcePool::CircuitEntry> circuit;
    std::unique_ptr<core::StandbyOptimizer> optimizer;
    std::uint64_t last_use = 0;
  };

  void evict_oldest() {
    auto oldest = contexts_.begin();
    for (auto it = contexts_.begin(); it != contexts_.end(); ++it) {
      if (it->second.last_use < oldest->second.last_use) oldest = it;
    }
    contexts_.erase(oldest);
  }

  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::map<std::string, Context> contexts_;
};

// --------------------------------------------------------------------------
// Scheduler
// --------------------------------------------------------------------------

Scheduler::Scheduler(const Options& options) : options_(options) {
  SolutionCache::Options cache_options;
  cache_options.capacity = options.cache_capacity;
  cache_options.shards = options.cache_shards;
  cache_options.disk_dir = options.cache_dir;
  cache_ = std::make_unique<SolutionCache>(cache_options);
  if (!options.checkpoint_dir.empty()) {
    // Best-effort create; a failed mkdir surfaces as checkpoint-write
    // warnings, never as job failures.
    ::mkdir(options.checkpoint_dir.c_str(), 0777);
  }
  pool_ = std::make_unique<ResourcePool>();
  queue_ = std::make_unique<JobQueue>(options.queue_capacity);

  const int workers = resolve_thread_count(options.workers, 256);
  options_.workers = workers;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

Scheduler::~Scheduler() { shutdown(/*drain=*/true); }

void Scheduler::set_cluster(Cluster* cluster) {
  cluster_ = cluster;
  dist_cache_ = cluster != nullptr
                    ? std::make_unique<DistributedCache>(*cache_, *cluster)
                    : nullptr;
}

JobId Scheduler::submit(const JobSpec& spec) {
  validate_job_spec(spec);
  std::shared_ptr<JobRecord> record = std::make_shared<JobRecord>();
  record->spec = spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) throw ContractError("scheduler is shutting down");
    record->id = next_id_++;
    jobs_.emplace(record->id, record);
    if (spec.deadline_s > 0.0) {
      deadlines_.emplace(std::chrono::steady_clock::now() +
                             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(spec.deadline_s)),
                         record->id);
      monitor_cv_.notify_one();
    }
  }
  // Blocking push = backpressure toward submitters when the queue is full.
  if (!queue_->push(record->id, spec.priority)) {
    std::lock_guard<std::mutex> lock(mu_);
    record->result.status = JobStatus::kCancelled;
    record->result.error = "scheduler shut down before the job was queued";
    record->status.store(JobStatus::kCancelled);
    throw ContractError("scheduler is shutting down");
  }
  return record->id;
}

std::optional<JobId> Scheduler::try_submit(const JobSpec& spec) {
  validate_job_spec(spec);
  std::shared_ptr<JobRecord> record = std::make_shared<JobRecord>();
  record->spec = spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) throw ContractError("scheduler is shutting down");
    record->id = next_id_++;
    jobs_.emplace(record->id, record);
  }
  if (!queue_->try_push(record->id, spec.priority)) {
    // Queue full (or closing): undo the reservation. The burned id keeps
    // `submitted` counting admission attempts, which is what it reports.
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.erase(record->id);
    return std::nullopt;
  }
  if (spec.deadline_s > 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    deadlines_.emplace(std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(spec.deadline_s)),
                       record->id);
    monitor_cv_.notify_one();
  }
  return record->id;
}

std::shared_ptr<Scheduler::JobRecord> Scheduler::find(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

bool Scheduler::cancel(JobId id) {
  std::shared_ptr<JobRecord> record = find(id);
  if (record == nullptr) return false;
  std::unique_lock<std::mutex> lock(mu_);
  const JobStatus status = record->status.load();
  if (status == JobStatus::kQueued) {
    if (queue_->remove(id)) {
      record->result.status = JobStatus::kCancelled;
      record->result.error = "cancelled";
      record->result.label = record->spec.label;
      record->status.store(JobStatus::kCancelled);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      terminal_cv_.notify_all();
      return true;
    }
    // Raced with a worker's pop: fall through to the running path.
  } else if (status != JobStatus::kRunning) {
    return false;  // already terminal
  }
  record->user_cancelled.store(true);
  record->cancel.store(true);
  return true;
}

JobStatus Scheduler::status(JobId id) const {
  std::shared_ptr<JobRecord> record = find(id);
  if (record == nullptr) throw ContractError("unknown job id");
  return record->status.load();
}

JobResult Scheduler::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw ContractError("unknown job id");
  std::shared_ptr<JobRecord> record = it->second;
  terminal_cv_.wait(lock, [&record] {
    const JobStatus s = record->status.load();
    return s == JobStatus::kDone || s == JobStatus::kFailed ||
           s == JobStatus::kCancelled;
  });
  return record->result;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.submitted = next_id_ - 1;
  }
  out.completed = completed_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  out.executed = executed_.load(std::memory_order_relaxed);
  out.retried = retried_.load(std::memory_order_relaxed);
  out.queued = queue_->size();
  out.running = running_.load(std::memory_order_relaxed);
  out.workers = options_.workers;
  out.jobs_adopted = jobs_adopted_.load(std::memory_order_relaxed);
  out.cache = cache_->stats();
  return out;
}

void Scheduler::release_ledger(const std::string& path) {
  std::lock_guard<std::mutex> lock(ledger_mu_);
  auto it = std::find(active_ledgers_.begin(), active_ledgers_.end(), path);
  if (it != active_ledgers_.end()) active_ledgers_.erase(it);
}

std::size_t Scheduler::adopt_orphaned_jobs(bool force) {
  if (options_.checkpoint_dir.empty()) return 0;
  std::vector<std::string> ledgers;
  if (DIR* dir = ::opendir(options_.checkpoint_dir.c_str())) {
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      const std::string suffix = ".ledger";
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        ledgers.push_back(options_.checkpoint_dir + "/" + name);
      }
    }
    ::closedir(dir);
  }
  std::size_t adopted = 0;
  for (const std::string& path : ledgers) {
    {
      std::lock_guard<std::mutex> lock(ledger_mu_);
      if (std::find(active_ledgers_.begin(), active_ledgers_.end(), path) !=
          active_ledgers_.end()) {
        continue;  // a job of ours is journaling to it right now
      }
    }
    try {
      std::ifstream in(path);
      if (!in) continue;
      std::ostringstream text;
      text << in.rdbuf();
      const Json doc = Json::parse(text.str());
      const Json* magic = doc.get("svtox_ledger");
      const Json* spec_json = doc.get("spec");
      if (magic == nullptr || magic->as_int() != 1 || spec_json == nullptr) {
        log_warn("adopt: ignoring malformed ledger " + path);
        continue;
      }
      const Json* owner_json = doc.get("owner");
      const std::string owner =
          owner_json != nullptr ? owner_json->as_string() : std::string();
      if (!force && !owner.empty() && cluster_ != nullptr &&
          !cluster_->is_self(owner) &&
          cluster_->health(owner) != PeerHealth::kDown) {
        // The recorded coordinator is (still) alive: the orphan is not an
        // orphan. An operator can override with force.
        continue;
      }
      JobSpec spec = job_spec_from_json(*spec_json);
      if (const std::optional<JobId> id = try_submit(spec)) {
        log_info("adopt: resubmitted ledger " + path + " (owner '" + owner +
                 "') as job " + std::to_string(*id));
        ++adopted;
      } else {
        log_warn("adopt: queue full, leaving ledger " + path + " for later");
      }
    } catch (const std::exception& e) {
      log_warn("adopt: skipping ledger " + path + " (" + e.what() + ")");
    }
  }
  return adopted;
}

void Scheduler::finish(JobRecord& record, JobResult result, JobStatus status) {
  result.status = status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    record.result = std::move(result);
    record.status.store(status);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (status == JobStatus::kFailed) failed_.fetch_add(1, std::memory_order_relaxed);
  if (status == JobStatus::kCancelled) cancelled_.fetch_add(1, std::memory_order_relaxed);
  terminal_cv_.notify_all();
}

void Scheduler::worker_loop(int worker_index) {
  (void)worker_index;
  WorkerState state(options_.contexts_per_worker);
  while (std::optional<JobId> id = queue_->pop()) {
    std::shared_ptr<JobRecord> record = find(*id);
    if (record == nullptr) continue;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (record->status.load() != JobStatus::kQueued) continue;
      record->status.store(JobStatus::kRunning);
    }
    running_.fetch_add(1, std::memory_order_relaxed);
    execute(state, *record);
    running_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Scheduler::execute(WorkerState& state, JobRecord& record) {
  JobSpec spec = record.spec;
  JobResult result;
  result.method = spec.method;
  result.penalty_percent = spec.penalty_percent;
  result.label = spec.label;

  // Caching requires the result to be a pure function of the cache key.
  // Subtree shards are not: the migration token (resume_text) seeds the
  // incumbent and is deliberately NOT part of the key, so shard jobs
  // always solve.
  const bool cacheable =
      spec.use_cache && spec.subtree_prefix.empty() && spec.resume_text.empty();
  std::string key;
  bool cache_owner = false;
  // fetch_or_lock must run at most once per job: a second call by the same
  // owner would deadlock on its own inflight marker.
  bool cache_checked = false;
  for (int attempt = 0;; ++attempt) {
    try {
      SVTOX_FAIL_POINT("job_execute");
      if (spec.subtrees >= 2 && !spec.bench_path.empty()) {
        // Coordinators must ship the *identical* netlist to their peers:
        // the search fingerprint embeds the netlist name, and a file
        // resolved here would be named differently than its inlined copy
        // on a remote worker -- tokens would be silently dropped there.
        // Inline the content up front so every node resolves the same
        // content-addressed circuit.
        std::ifstream in(spec.bench_path);
        if (!in) {
          throw Error(ErrorCode::kIo,
                      "cannot read bench file '" + spec.bench_path + "'");
        }
        std::ostringstream text;
        text << in.rdbuf();
        spec.bench_text = text.str();
        spec.bench_path.clear();
      }
      std::shared_ptr<const ResourcePool::LibraryEntry> library = pool_->library(spec);
      std::shared_ptr<const ResourcePool::CircuitEntry> circuit =
          pool_->circuit(library, spec);
      result.circuit = circuit->netlist.name();
      result.gates = circuit->netlist.num_gates();

      RunKnobs knobs;
      knobs.method = spec.method;
      knobs.penalty_fraction = spec.penalty_percent / 100.0;
      knobs.time_limit_s = spec.time_limit_s;
      knobs.random_vectors = spec.random_vectors;
      knobs.seed = spec.seed;
      knobs.search_threads = spec.search_threads;
      knobs.max_leaves = spec.max_leaves;
      knobs.subtrees = spec.subtrees;
      knobs.subtree_prefix = spec.subtree_prefix;
      knobs.pinned_inputs = spec.pinned_inputs;
      knobs.boundary_timing = spec.boundary_timing;
      const std::string job_key = cache_key(library->fp, circuit->fp, knobs);

      if (cacheable && !cache_checked) {
        cache_checked = true;
        key = job_key;
        std::optional<JobResult> cached = dist_cache_ != nullptr
                                              ? dist_cache_->fetch_or_lock(key)
                                              : cache_->fetch_or_lock(key);
        if (cached) {
          cached->label = spec.label;  // echo the submitter's tag, not the solver's
          finish(record, std::move(*cached), JobStatus::kDone);
          return;
        }
        cache_owner = true;
      }

      core::StandbyOptimizer& optimizer = state.optimizer_for(circuit);
      core::RunConfig config;
      config.penalty_fraction = spec.penalty_percent / 100.0;
      config.time_limit_s = spec.time_limit_s;
      config.random_vectors = spec.random_vectors;
      config.seed = spec.seed;
      config.threads = spec.search_threads;
      config.cancel = &record.cancel;
      config.max_leaves = spec.max_leaves;
      const core::Method method = method_enum(spec.method);
      if (!options_.checkpoint_dir.empty() &&
          (method == core::Method::kStateOnly || method == core::Method::kVtState ||
           method == core::Method::kHeu2 || method == core::Method::kExact)) {
        // Content-addressed checkpoint file: an interrupted job's snapshot
        // is picked up by any resubmission of the same job.
        config.checkpoint_path = options_.checkpoint_dir + "/" + job_key + ".ckpt";
        config.checkpoint_every_s = options_.checkpoint_every_s;
      }
      if (!spec.subtree_prefix.empty()) {
        // Subtree shard (coordinator -> worker): pin the prescribed branch
        // and seed/resume from the migration token.
        config.subtree_prefix.resize(spec.subtree_prefix.size());
        for (std::size_t i = 0; i < spec.subtree_prefix.size(); ++i) {
          config.subtree_prefix[i] = spec.subtree_prefix[i] == '1';
        }
        config.resume_text = spec.resume_text;
      }
      if (!spec.pinned_inputs.empty()) {
        // Boundary-aware cone solve: length-check against the *resolved*
        // netlist (validate_job_spec cannot -- it never sees the circuit).
        if (spec.pinned_inputs.size() !=
            static_cast<std::size_t>(circuit->netlist.num_control_points())) {
          throw ContractError("pins want one char per control point (" +
                              std::to_string(circuit->netlist.num_control_points()) +
                              "), got " + std::to_string(spec.pinned_inputs.size()));
        }
        config.pinned_inputs = parse_pinned_inputs(spec.pinned_inputs);
      }
      if (!spec.boundary_timing.empty()) {
        config.boundary = parse_boundary_timing(spec.boundary_timing);
        if (config.boundary.points.size() !=
            static_cast<std::size_t>(circuit->netlist.num_control_points())) {
          throw ContractError(
              "boundary timing wants one arrival:slew pair per control point (" +
              std::to_string(circuit->netlist.num_control_points()) + "), got " +
              std::to_string(config.boundary.points.size()));
        }
      }
      core::MethodResult run;
      if (spec.subtrees >= 2) {
        DistSearchContext dist{optimizer,
                               library->fp,
                               circuit->fp,
                               cluster_,
                               options_.checkpoint_dir,
                               options_.checkpoint_every_s,
                               &record.cancel,
                               options_.dist_poll_interval_s,
                               /*queued_grace_s=*/5.0,
                               options_.dist_steal_after_s};
        dist.adopted = &jobs_adopted_;
        if (!options_.checkpoint_dir.empty()) {
          // Content-addressed failover journal: any resubmission of the
          // same coordinator job (this daemon restarted, or a peer that
          // adopted the orphan) finds and resumes it.
          dist.ledger_path = options_.checkpoint_dir + "/" + job_key + ".ledger";
        }
        // Mark the ledger live so adopt_orphaned_jobs never resubmits a
        // job this scheduler is still running.
        if (!dist.ledger_path.empty()) {
          std::lock_guard<std::mutex> ledger_lock(ledger_mu_);
          active_ledgers_.push_back(dist.ledger_path);
        }
        try {
          run = distributed_search(spec, dist);
        } catch (...) {
          if (!dist.ledger_path.empty()) release_ledger(dist.ledger_path);
          throw;
        }
        if (!dist.ledger_path.empty()) release_ledger(dist.ledger_path);
      } else {
        run = optimizer.run(method, config);
      }

      result.leakage_ua = run.leakage_ua;
      result.reduction_x = run.reduction_x;
      result.delay_ps = run.solution.delay_ps;
      result.states_explored = run.solution.states_explored;
      result.interrupted = run.solution.interrupted;
      result.runtime_s =
          method == core::Method::kAverageRandom ? run.runtime_s : run.solution.runtime_s;
      if (method != core::Method::kAverageRandom && spec.subtree_prefix.empty()) {
        result.solution_text = core::write_solution(run.solution, circuit->netlist);
      }
      if (!spec.subtree_prefix.empty()) {
        // The coordinator merges checkpoints, not solution text. tree_done
        // means the shard's whole deterministic work unit finished
        // (exhausted or leaf budget consumed) -- synthesize a result
        // token. A cancelled shard instead ships the search's final
        // on-disk snapshot verbatim: it carries the frontier path, which
        // a path-less blob with non-zero counters could not replace
        // (resuming one would re-count leaves and break byte-identity).
        if (!run.solution.interrupted) {
          opt::SearchCheckpoint token;
          token.tree_done = true;
          token.nodes = run.solution.nodes_visited;
          token.leaves = run.solution.states_explored;
          token.elapsed_s = run.solution.runtime_s;
          token.sleep_vector = run.solution.sleep_vector;
          token.config = run.solution.config;
          token.leakage_na = run.solution.leakage_na;
          token.delay_ps = run.solution.delay_ps;
          result.checkpoint_text = opt::write_checkpoint(token);
        } else if (!config.checkpoint_path.empty()) {
          std::ifstream in(config.checkpoint_path);
          if (in) {
            std::ostringstream text;
            text << in.rdbuf();
            result.checkpoint_text = text.str();
          }
        }
      }
      executed_.fetch_add(1, std::memory_order_relaxed);

      if (cache_owner) {
        // Both levels skip storing interrupted results (and the
        // distributed layer turns them into an owner-side abandon).
        if (dist_cache_ != nullptr) {
          dist_cache_->publish(key, result);
        } else {
          cache_->publish(key, result);
        }
      }
      if (result.interrupted && record.user_cancelled.load()) {
        result.error = "cancelled (best-so-far solution attached)";
        finish(record, std::move(result), JobStatus::kCancelled);
      } else if (result.interrupted && record.shutdown_fired.load()) {
        result.error =
            "interrupted by shutdown (best-so-far attached; resubmit to resume)";
        finish(record, std::move(result), JobStatus::kCancelled);
      } else {
        if (result.interrupted && record.deadline_fired.load()) {
          result.error = "deadline expired (best-so-far solution attached)";
        }
        finish(record, std::move(result), JobStatus::kDone);
      }
      return;
    } catch (const Error& e) {
      if (e.retryable() && attempt < spec.retries &&
          !record.cancel.load(std::memory_order_relaxed)) {
        retried_.fetch_add(1, std::memory_order_relaxed);
        log_warn("job " + std::to_string(record.id) + " attempt " +
                 std::to_string(attempt + 1) + " failed (" + e.what() +
                 "); retrying");
        continue;
      }
      if (cache_owner) {
        if (dist_cache_ != nullptr) {
          dist_cache_->abandon(key);
        } else {
          cache_->abandon(key);
        }
      }
      result.error = e.what();
      result.error_code = to_string(e.code());
      finish(record, std::move(result), JobStatus::kFailed);
      return;
    } catch (const std::exception& e) {
      // Non-Error exceptions (contract violations, bad_alloc, ...) are
      // never retried: they would fail identically every time.
      if (cache_owner) {
        if (dist_cache_ != nullptr) {
          dist_cache_->abandon(key);
        } else {
          cache_->abandon(key);
        }
      }
      result.error = e.what();
      result.error_code = "internal";
      finish(record, std::move(result), JobStatus::kFailed);
      return;
    }
  }
}

void Scheduler::monitor_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (monitor_stop_) return;
    if (deadlines_.empty()) {
      monitor_cv_.wait(lock);
      continue;
    }
    const auto [when, id] = deadlines_.top();
    const auto now = std::chrono::steady_clock::now();
    if (now < when) {
      monitor_cv_.wait_until(lock, when);
      continue;
    }
    deadlines_.pop();
    auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    JobRecord& record = *it->second;
    const JobStatus status = record.status.load();
    if (status == JobStatus::kQueued && queue_->remove(id)) {
      record.result.status = JobStatus::kCancelled;
      record.result.error = "deadline expired before the job started";
      record.result.label = record.spec.label;
      record.status.store(JobStatus::kCancelled);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      terminal_cv_.notify_all();
    } else if (status == JobStatus::kQueued || status == JobStatus::kRunning) {
      record.deadline_fired.store(true);
      record.cancel.store(true);
    }
  }
}

void Scheduler::shutdown(bool drain, bool interrupt_running) {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (stopped_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
  }
  if (interrupt_running) {
    // Ask running jobs to stop cooperatively. A checkpointing search
    // snapshots its frontier before returning, so these jobs resume on
    // resubmission instead of restarting.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, record] : jobs_) {
      (void)id;
      if (record->status.load() == JobStatus::kRunning) {
        record->shutdown_fired.store(true);
        record->cancel.store(true);
      }
    }
  }
  if (!drain) {
    for (const JobId id : queue_->clear()) {
      std::shared_ptr<JobRecord> record = find(id);
      if (record == nullptr) continue;
      std::lock_guard<std::mutex> lock(mu_);
      record->result.status = JobStatus::kCancelled;
      record->result.error = "scheduler shut down";
      record->result.label = record->spec.label;
      record->status.store(JobStatus::kCancelled);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      terminal_cv_.notify_all();
    }
  }
  queue_->close();
  for (std::thread& worker : workers_) worker.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    monitor_stop_ = true;
    monitor_cv_.notify_all();
  }
  if (monitor_.joinable()) monitor_.join();
  stopped_ = true;
}

}  // namespace svtox::svc
