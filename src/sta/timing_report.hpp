// Timing reporting on top of TimingState: required times, slacks, worst
// paths, and a human-readable report -- what a designer would inspect after
// accepting a standby solution's delay cost.
#pragma once

#include <string>
#include <vector>

#include "sta/sta.hpp"

namespace svtox::sta {

/// Per-signal slack analysis against a required time at every primary
/// output. Required times propagate backwards through the same NLDM arcs
/// the arrivals used.
class SlackAnalysis {
 public:
  /// Computes slacks for `netlist` under `config` with all primary outputs
  /// required at `required_ps`.
  SlackAnalysis(const netlist::Netlist& netlist, const sim::CircuitConfig& config,
                double required_ps);

  /// Worst slack over both edges of a signal [ps]; negative = violating.
  double slack_ps(int signal) const;
  double slack_rise_ps(int signal) const { return required_rise_.at(signal) - arrival_rise_.at(signal); }
  double slack_fall_ps(int signal) const { return required_fall_.at(signal) - arrival_fall_.at(signal); }

  /// Worst slack anywhere in the design.
  double worst_slack_ps() const;

  /// Signals sorted by ascending slack (most critical first), at most `n`.
  std::vector<int> most_critical(int n) const;

  /// Histogram of signal slacks in `bins` equal-width buckets across the
  /// observed slack range; returns bucket counts (for quick texture checks).
  std::vector<int> histogram(int bins) const;

 private:
  const netlist::Netlist* netlist_;
  std::vector<double> arrival_rise_, arrival_fall_;
  std::vector<double> required_rise_, required_fall_;
};

/// One line per stage of the worst path: gate, cell version, per-stage
/// arrival. Rendered as a classic timing-report block.
std::string render_worst_path(const netlist::Netlist& netlist,
                              const sim::CircuitConfig& config);

}  // namespace svtox::sta
