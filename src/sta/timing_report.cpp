#include "sta/timing_report.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace svtox::sta {

SlackAnalysis::SlackAnalysis(const netlist::Netlist& netlist,
                             const sim::CircuitConfig& config, double required_ps)
    : netlist_(&netlist) {
  TimingState timing(netlist);
  timing.analyze(config);

  const int n = netlist.num_signals();
  arrival_rise_.resize(n);
  arrival_fall_.resize(n);
  for (int s = 0; s < n; ++s) {
    arrival_rise_[static_cast<std::size_t>(s)] = timing.arrival_rise_ps(s);
    arrival_fall_[static_cast<std::size_t>(s)] = timing.arrival_fall_ps(s);
  }

  // Backward required-time propagation: POs are required at required_ps;
  // a fanin's required time is the tightest sink requirement minus the
  // stage delay through that sink (inverting cells: rise feeds fall and
  // vice versa). Stage delays reuse the forward pass's slews.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  required_rise_.assign(n, kInf);
  required_fall_.assign(n, kInf);
  for (int s : netlist.observe_points()) {
    required_rise_[static_cast<std::size_t>(s)] = required_ps;
    required_fall_[static_cast<std::size_t>(s)] = required_ps;
  }
  const std::vector<int>& order = netlist.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const int g = *it;
    const netlist::Gate& gate = netlist.gate(g);
    const sim::GateConfig& gc = config[static_cast<std::size_t>(g)];
    const liberty::LibCellVariant& variant = netlist.cell_of(g).variant(gc.variant);
    const double out_load = netlist.signal_load_ff(gate.output);
    const double req_rise = required_rise_[static_cast<std::size_t>(gate.output)];
    const double req_fall = required_fall_[static_cast<std::size_t>(gate.output)];

    for (std::size_t pin = 0; pin < gate.fanins.size(); ++pin) {
      const int in_sig = gate.fanins[pin];
      const int phys = gc.mapping.logical_to_physical.empty()
                           ? static_cast<int>(pin)
                           : gc.mapping.logical_to_physical[pin];
      const liberty::PinTiming& t = variant.pins.at(static_cast<std::size_t>(phys));
      const double slew_fall_in = timing.slew_fall_ps(in_sig);
      const double slew_rise_in = timing.slew_rise_ps(in_sig);
      // Input fall constrains through the output-rise arc.
      required_fall_[static_cast<std::size_t>(in_sig)] =
          std::min(required_fall_[static_cast<std::size_t>(in_sig)],
                   req_rise - t.delay_rise.lookup(slew_fall_in, out_load));
      // Input rise constrains through the output-fall arc.
      required_rise_[static_cast<std::size_t>(in_sig)] =
          std::min(required_rise_[static_cast<std::size_t>(in_sig)],
                   req_fall - t.delay_fall.lookup(slew_rise_in, out_load));
    }
  }
  // Signals with no timed sinks (unloaded, non-PO) keep infinite required
  // time; clamp to the PO requirement for sane reporting.
  for (int s = 0; s < n; ++s) {
    if (required_rise_[static_cast<std::size_t>(s)] == kInf) {
      required_rise_[static_cast<std::size_t>(s)] = required_ps;
    }
    if (required_fall_[static_cast<std::size_t>(s)] == kInf) {
      required_fall_[static_cast<std::size_t>(s)] = required_ps;
    }
  }
}

double SlackAnalysis::slack_ps(int signal) const {
  return std::min(slack_rise_ps(signal), slack_fall_ps(signal));
}

double SlackAnalysis::worst_slack_ps() const {
  double worst = std::numeric_limits<double>::infinity();
  for (int s = 0; s < netlist_->num_signals(); ++s) worst = std::min(worst, slack_ps(s));
  return worst;
}

std::vector<int> SlackAnalysis::most_critical(int n) const {
  std::vector<int> signals(static_cast<std::size_t>(netlist_->num_signals()));
  std::iota(signals.begin(), signals.end(), 0);
  std::stable_sort(signals.begin(), signals.end(),
                   [&](int a, int b) { return slack_ps(a) < slack_ps(b); });
  if (static_cast<int>(signals.size()) > n) signals.resize(static_cast<std::size_t>(n));
  return signals;
}

std::vector<int> SlackAnalysis::histogram(int bins) const {
  if (bins < 1) throw ContractError("SlackAnalysis::histogram: bins must be >= 1");
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (int s = 0; s < netlist_->num_signals(); ++s) {
    lo = std::min(lo, slack_ps(s));
    hi = std::max(hi, slack_ps(s));
  }
  std::vector<int> counts(static_cast<std::size_t>(bins), 0);
  const double width = hi > lo ? (hi - lo) / bins : 1.0;
  for (int s = 0; s < netlist_->num_signals(); ++s) {
    int bucket = static_cast<int>((slack_ps(s) - lo) / width);
    bucket = std::clamp(bucket, 0, bins - 1);
    ++counts[static_cast<std::size_t>(bucket)];
  }
  return counts;
}

std::string render_worst_path(const netlist::Netlist& netlist,
                              const sim::CircuitConfig& config) {
  TimingState timing(netlist);
  timing.analyze(config);
  const std::vector<int> path = timing.critical_path(config);

  std::ostringstream out;
  out << "worst path (" << netlist.name() << "), arrival "
      << format_double(timing.circuit_delay_ps(), 1) << " ps:\n";
  // Path is output-first; print input-first like a classic report.
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const int g = *it;
    const netlist::Gate& gate = netlist.gate(g);
    const sim::GateConfig& gc = config[static_cast<std::size_t>(g)];
    const double arrival = std::max(timing.arrival_rise_ps(gate.output),
                                    timing.arrival_fall_ps(gate.output));
    out << "  " << gate.name << " (" << netlist.cell_of(g).variant(gc.variant).name
        << ") -> " << netlist.signal_name(gate.output) << "  @ "
        << format_double(arrival, 1) << " ps\n";
  }
  return out.str();
}

}  // namespace svtox::sta
