#include "sta/sta.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/error.hpp"

namespace svtox::sta {

namespace {

constexpr double kEpsPs = 1e-9;

/// One gate's freshly computed output timing.
struct GateTiming {
  double at_rise = 0.0, at_fall = 0.0;
  double slew_rise = 0.0, slew_fall = 0.0;
};

GateTiming evaluate_gate(const netlist::Netlist& netlist, const sim::CircuitConfig& config,
                         int gate, const std::vector<double>& at_rise,
                         const std::vector<double>& at_fall,
                         const std::vector<double>& slew_rise,
                         const std::vector<double>& slew_fall,
                         const std::vector<double>& load_ff, double delay_scale) {
  const netlist::Gate& g = netlist.gate(gate);
  const liberty::LibCell& cell = netlist.cell_of(gate);
  const sim::GateConfig& gc = config[static_cast<std::size_t>(gate)];
  const liberty::LibCellVariant& variant = cell.variant(gc.variant);
  const double out_load = load_ff[static_cast<std::size_t>(g.output)];

  GateTiming t;
  t.at_rise = -1e300;
  t.at_fall = -1e300;
  for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
    const int in_sig = g.fanins[pin];
    const int phys = gc.mapping.logical_to_physical.empty()
                         ? static_cast<int>(pin)
                         : gc.mapping.logical_to_physical[pin];
    const liberty::PinTiming& timing = variant.pins.at(static_cast<std::size_t>(phys));

    // Inverting cell: output rise comes from input fall.
    const double in_fall_slew = slew_fall[static_cast<std::size_t>(in_sig)];
    const double cand_rise = at_fall[static_cast<std::size_t>(in_sig)] +
                             delay_scale * timing.delay_rise.lookup(in_fall_slew, out_load);
    if (cand_rise > t.at_rise) {
      t.at_rise = cand_rise;
      t.slew_rise = delay_scale * timing.slew_rise.lookup(in_fall_slew, out_load);
    }

    const double in_rise_slew = slew_rise[static_cast<std::size_t>(in_sig)];
    const double cand_fall = at_rise[static_cast<std::size_t>(in_sig)] +
                             delay_scale * timing.delay_fall.lookup(in_rise_slew, out_load);
    if (cand_fall > t.at_fall) {
      t.at_fall = cand_fall;
      t.slew_fall = delay_scale * timing.slew_fall.lookup(in_rise_slew, out_load);
    }
  }
  return t;
}

}  // namespace

TimingState::TimingState(const netlist::Netlist& netlist) : netlist_(&netlist) {
  if (!netlist.finalized()) throw ContractError("TimingState: netlist not finalized");
  const int n = netlist.num_signals();
  at_rise_.assign(n, 0.0);
  at_fall_.assign(n, 0.0);
  slew_rise_.assign(n, 0.0);
  slew_fall_.assign(n, 0.0);
  load_ff_.resize(n);
  for (int s = 0; s < n; ++s) load_ff_[static_cast<std::size_t>(s)] = netlist.signal_load_ff(s);
  topo_rank_.assign(netlist.num_gates(), 0);
  const std::vector<int>& order = netlist.topological_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    topo_rank_[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
}

double TimingState::analyze(const sim::CircuitConfig& config, double delay_scale) {
  if (config.size() != static_cast<std::size_t>(netlist_->num_gates())) {
    throw ContractError("TimingState::analyze: config size mismatch");
  }
  const double pi_slew = netlist_->library().tech().default_pi_slew_ps;
  for (int s : netlist_->control_points()) {
    at_rise_[static_cast<std::size_t>(s)] = 0.0;
    at_fall_[static_cast<std::size_t>(s)] = 0.0;
    slew_rise_[static_cast<std::size_t>(s)] = pi_slew;
    slew_fall_[static_cast<std::size_t>(s)] = pi_slew;
  }
  for (int g : netlist_->topological_order()) {
    const GateTiming t = evaluate_gate(*netlist_, config, g, at_rise_, at_fall_,
                                       slew_rise_, slew_fall_, load_ff_, delay_scale);
    const std::size_t out = static_cast<std::size_t>(netlist_->gate(g).output);
    at_rise_[out] = t.at_rise;
    at_fall_[out] = t.at_fall;
    slew_rise_[out] = t.slew_rise;
    slew_fall_[out] = t.slew_fall;
  }
  return circuit_delay_ps();
}

bool TimingState::recompute_gate(const sim::CircuitConfig& config, int gate,
                                 TimingUndo* undo) {
  const GateTiming t = evaluate_gate(*netlist_, config, gate, at_rise_, at_fall_,
                                     slew_rise_, slew_fall_, load_ff_, 1.0);
  const std::size_t out = static_cast<std::size_t>(netlist_->gate(gate).output);
  if (std::abs(t.at_rise - at_rise_[out]) < kEpsPs &&
      std::abs(t.at_fall - at_fall_[out]) < kEpsPs &&
      std::abs(t.slew_rise - slew_rise_[out]) < kEpsPs &&
      std::abs(t.slew_fall - slew_fall_[out]) < kEpsPs) {
    return false;
  }
  if (undo != nullptr) {
    undo->entries.push_back({static_cast<int>(out), at_rise_[out], at_fall_[out],
                             slew_rise_[out], slew_fall_[out]});
  }
  at_rise_[out] = t.at_rise;
  at_fall_[out] = t.at_fall;
  slew_rise_[out] = t.slew_rise;
  slew_fall_[out] = t.slew_fall;
  return true;
}

double TimingState::update_after_gate_change(const sim::CircuitConfig& config, int gate,
                                             TimingUndo* undo) {
  // Process the affected cone in topological order; a min-heap over topo
  // rank guarantees each gate is re-evaluated at most once per update with
  // all its fanins final.
  using Item = std::pair<int, int>;  // (rank, gate)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  std::vector<bool> queued(static_cast<std::size_t>(netlist_->num_gates()), false);
  queue.push({topo_rank_[static_cast<std::size_t>(gate)], gate});
  queued[static_cast<std::size_t>(gate)] = true;

  while (!queue.empty()) {
    const int g = queue.top().second;
    queue.pop();
    queued[static_cast<std::size_t>(g)] = false;
    if (!recompute_gate(config, g, undo)) continue;
    for (const netlist::Sink& sink : netlist_->sinks(netlist_->gate(g).output)) {
      if (!queued[static_cast<std::size_t>(sink.gate)]) {
        queue.push({topo_rank_[static_cast<std::size_t>(sink.gate)], sink.gate});
        queued[static_cast<std::size_t>(sink.gate)] = true;
      }
    }
  }
  return circuit_delay_ps();
}

void TimingState::revert(const TimingUndo& undo) {
  for (auto it = undo.entries.rbegin(); it != undo.entries.rend(); ++it) {
    const std::size_t s = static_cast<std::size_t>(it->signal);
    at_rise_[s] = it->at_rise;
    at_fall_[s] = it->at_fall;
    slew_rise_[s] = it->slew_rise;
    slew_fall_[s] = it->slew_fall;
  }
}

double TimingState::circuit_delay_ps() const {
  double worst = 0.0;
  for (int s : netlist_->observe_points()) {
    worst = std::max({worst, at_rise_[static_cast<std::size_t>(s)],
                      at_fall_[static_cast<std::size_t>(s)]});
  }
  return worst;
}

TimingState::Critical TimingState::critical_output() const {
  Critical crit;
  for (int s : netlist_->observe_points()) {
    const double r = at_rise_[static_cast<std::size_t>(s)];
    const double f = at_fall_[static_cast<std::size_t>(s)];
    if (r > crit.arrival_ps) crit = {s, true, r};
    if (f > crit.arrival_ps) crit = {s, false, f};
  }
  return crit;
}

std::vector<int> TimingState::critical_path(const sim::CircuitConfig& config) const {
  std::vector<int> path;
  Critical point = critical_output();
  while (point.signal >= 0 && netlist_->driver(point.signal) >= 0) {
    const int gate = netlist_->driver(point.signal);
    path.push_back(gate);

    // Find the fanin pin whose arrival + delay realizes this output edge.
    const netlist::Gate& g = netlist_->gate(gate);
    const sim::GateConfig& gc = config[static_cast<std::size_t>(gate)];
    const liberty::LibCellVariant& variant = netlist_->cell_of(gate).variant(gc.variant);
    const double out_load = load_ff_[static_cast<std::size_t>(g.output)];
    double best = -1e300;
    int best_sig = -1;
    for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
      const int in_sig = g.fanins[pin];
      const int phys = gc.mapping.logical_to_physical.empty()
                           ? static_cast<int>(pin)
                           : gc.mapping.logical_to_physical[pin];
      const liberty::PinTiming& timing = variant.pins.at(static_cast<std::size_t>(phys));
      double cand;
      if (point.rising) {
        cand = at_fall_[static_cast<std::size_t>(in_sig)] +
               timing.delay_rise.lookup(slew_fall_[static_cast<std::size_t>(in_sig)],
                                        out_load);
      } else {
        cand = at_rise_[static_cast<std::size_t>(in_sig)] +
               timing.delay_fall.lookup(slew_rise_[static_cast<std::size_t>(in_sig)],
                                        out_load);
      }
      if (cand > best) {
        best = cand;
        best_sig = in_sig;
      }
    }
    point.signal = best_sig;
    point.rising = !point.rising;  // inverting stage
    point.arrival_ps = best;
  }
  return path;
}

DelayBudget compute_delay_budget(const netlist::Netlist& netlist) {
  DelayBudget budget;
  TimingState timing(netlist);
  const sim::CircuitConfig fast = sim::fastest_config(netlist);
  budget.fast_delay_ps = timing.analyze(fast);

  // The paper's 100% reference replaces *every* device with its high-Vt,
  // thick-oxide counterpart -- a cell that deliberately is not part of the
  // swap library. Model it by scaling every stage's drive resistance by the
  // combined corner factor.
  const model::TechParams& tech = netlist.library().tech();
  const double scale =
      model::resistance_factor(tech, model::VtClass::kHigh, model::ToxClass::kThick);

  TimingState slow(netlist);
  budget.slow_delay_ps = slow.analyze(fast, scale);
  return budget;
}

}  // namespace svtox::sta
