#include "sta/sta.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <map>
#include <queue>
#include <utility>

#include "util/error.hpp"

namespace svtox::sta {

namespace {

constexpr double kEpsPs = 1e-9;

SignalTiming evaluate_gate(const netlist::Netlist& netlist, const sim::CircuitConfig& config,
                           int gate, const SignalTiming* sig,
                           const std::vector<double>& load_ff,
                           const LoadSlicedTables::GateView* views, double delay_scale) {
  const netlist::FlatNetlist& flat = netlist.flat();
  const std::uint32_t* fanins = flat.fanins(static_cast<std::uint32_t>(gate));
  const std::uint32_t num_pins = flat.fanin_count(static_cast<std::uint32_t>(gate));
  const sim::GateConfig& gc = config[static_cast<std::size_t>(gate)];

  SignalTiming t;
  t.at_rise = -1e300;
  t.at_fall = -1e300;

  if (views != nullptr) {
    // 1-D fast path (incremental updates only, delay_scale == 1): the
    // slices bake in the gate's output load, so every branch below returns
    // the same bits as the 2-D lookups while skipping the load axis and
    // the cell/variant indirection. The variant's slice row is hoisted out
    // of the pin loop.
    const LoadSlicedTables::GateView view = views[gate];
    const LoadSlicedTables::PinSlices* row =
        view.base + static_cast<std::size_t>(gc.variant) * view.pins;
    const std::vector<int>& map = gc.mapping.logical_to_physical;
    for (std::uint32_t pin = 0; pin < num_pins; ++pin) {
      const SignalTiming& in = sig[fanins[pin]];
      const LoadSlicedTables::PinSlices& sl =
          row[map.empty() ? pin : static_cast<std::uint32_t>(map[pin])];

      const double cand_rise = in.at_fall + sl.delay_rise.lookup(in.slew_fall);
      if (cand_rise > t.at_rise) {
        t.at_rise = cand_rise;
        t.slew_rise = sl.slew_rise.lookup(in.slew_fall);
      }

      const double cand_fall = in.at_rise + sl.delay_fall.lookup(in.slew_rise);
      if (cand_fall > t.at_fall) {
        t.at_fall = cand_fall;
        t.slew_fall = sl.slew_fall.lookup(in.slew_rise);
      }
    }
    return t;
  }

  const liberty::LibCell& cell =
      netlist.library().cell_at(static_cast<int>(flat.cell_index(static_cast<std::uint32_t>(gate))));
  const liberty::LibCellVariant& variant = cell.variant(gc.variant);
  const double out_load = load_ff[flat.output(static_cast<std::uint32_t>(gate))];
  for (std::uint32_t pin = 0; pin < num_pins; ++pin) {
    const SignalTiming& in = sig[fanins[pin]];
    const std::uint32_t phys = gc.mapping.logical_to_physical.empty()
                                   ? pin
                                   : static_cast<std::uint32_t>(
                                         gc.mapping.logical_to_physical[pin]);
    assert(phys < variant.pins.size());
    const liberty::PinTiming& timing = variant.pins[phys];

    // Inverting cell: output rise comes from input fall.
    const double cand_rise =
        in.at_fall + delay_scale * timing.delay_rise.lookup(in.slew_fall, out_load);
    if (cand_rise > t.at_rise) {
      t.at_rise = cand_rise;
      t.slew_rise = delay_scale * timing.slew_rise.lookup(in.slew_fall, out_load);
    }

    const double cand_fall =
        in.at_rise + delay_scale * timing.delay_fall.lookup(in.slew_rise, out_load);
    if (cand_fall > t.at_fall) {
      t.at_fall = cand_fall;
      t.slew_fall = delay_scale * timing.slew_fall.lookup(in.slew_rise, out_load);
    }
  }
  return t;
}

/// Lower bound of `table.lookup(slew, load)` over every real slew at the
/// fixed `load`. lookup() is piecewise linear in the slew axis with linear
/// extrapolation from the outermost segments, so the infimum is attained
/// either at a grid knot or along one of the two extrapolation tails,
/// where a downward slope makes it unbounded below (-1e300).
double table_lower_bound(const liberty::NldmTable& table, double load_ff) {
  const std::vector<double>& slews = table.slew_axis_ps();
  double lb = 1e300;
  for (double s : slews) lb = std::min(lb, table.lookup(s, load_ff));
  const double span = slews.back() - slews.front() + 1.0;
  if (table.lookup(slews.front() - span, load_ff) < table.lookup(slews.front(), load_ff) ||
      table.lookup(slews.back() + span, load_ff) < table.lookup(slews.back(), load_ff)) {
    return -1e300;  // a tail slopes downward: unbounded below
  }
  return lb;
}

/// True when slew -> table.lookup(slew, load) is nondecreasing over the
/// whole real line at this load: the knot values are nondecreasing and
/// neither extrapolation tail slopes downward. Checked numerically because
/// interpolating/extrapolating the load axis mixes grid columns.
bool monotone_in_slew(const liberty::NldmTable& table, double load_ff) {
  const std::vector<double>& slews = table.slew_axis_ps();
  const double span = slews.back() - slews.front() + 1.0;
  double prev = table.lookup(slews.front() - span, load_ff);
  for (double s : slews) {
    const double v = table.lookup(s, load_ff);
    if (v < prev) return false;
    prev = v;
  }
  return table.lookup(slews.back() + span, load_ff) >= prev;
}

/// One delay table of one (variant, pin, edge) with everything needed to
/// bound lookup(s, load) over s >= min_slew: the exact lookup when the
/// table is monotone at this load, a precomputed global minimum otherwise.
struct BoundedTable {
  const liberty::NldmTable* table;
  double load_ff;
  bool monotone;
  double global_lb;

  double lower_bound(double min_slew_ps) const {
    return monotone ? table->lookup(min_slew_ps, load_ff) : global_lb;
  }
};

}  // namespace

LoadSlicedTables::LoadSlicedTables(const netlist::Netlist& netlist) {
  if (!netlist.finalized()) {
    throw ContractError("LoadSlicedTables: netlist not finalized");
  }
  gates_.resize(static_cast<std::size_t>(netlist.num_gates()));
  // Instances of the same cell driving the same load are indistinguishable
  // to the tables; dedup on (cell, load bit pattern).
  std::map<std::pair<const liberty::LibCell*, std::uint64_t>, std::uint32_t> dedup;
  for (int g = 0; g < netlist.num_gates(); ++g) {
    const liberty::LibCell& cell = netlist.cell_of(g);
    const double load = netlist.signal_load_ff(netlist.gate(g).output);
    const std::size_t pins = cell.variants().empty()
                                 ? 0
                                 : cell.variants().front().pins.size();
    const auto [it, inserted] = dedup.try_emplace(
        {&cell, std::bit_cast<std::uint64_t>(load)},
        static_cast<std::uint32_t>(blocks_.size()));
    if (inserted) {
      std::vector<PinSlices> block;
      block.reserve(cell.variants().size() * pins);
      for (const liberty::LibCellVariant& variant : cell.variants()) {
        if (variant.pins.size() != pins) {
          throw ContractError("LoadSlicedTables: ragged pin count across variants");
        }
        for (const liberty::PinTiming& pin : variant.pins) {
          block.push_back({liberty::NldmLoadSlice(pin.delay_rise, load),
                           liberty::NldmLoadSlice(pin.delay_fall, load),
                           liberty::NldmLoadSlice(pin.slew_rise, load),
                           liberty::NldmLoadSlice(pin.slew_fall, load)});
        }
      }
      blocks_.push_back(std::move(block));
    }
    gates_[static_cast<std::size_t>(g)] = {it->second, static_cast<std::uint32_t>(pins)};
  }
}

std::vector<double> downstream_delay_lower_bounds_ps(const netlist::Netlist& netlist) {
  if (!netlist.finalized()) {
    throw ContractError("downstream_delay_lower_bounds_ps: netlist not finalized");
  }
  const int num_signals = netlist.num_signals();

  // Forward pass: min_slew[s] lower-bounds the slew of signal `s` under
  // EVERY configuration. Primary-input slews are a library constant that
  // analyze() applies regardless of config; a gate's output slew is some
  // slew table's lookup at the winning input's slew, which (for monotone
  // tables) is at least the lookup at that input's bound -- so the minimum
  // over variants, physical pins and both edges at the minimum fanin bound
  // covers whichever combination the configuration realizes.
  std::vector<double> min_slew(static_cast<std::size_t>(num_signals), 0.0);
  const double pi_slew = netlist.library().tech().default_pi_slew_ps;
  for (int s : netlist.control_points()) min_slew[static_cast<std::size_t>(s)] = pi_slew;

  for (int g : netlist.topological_order()) {
    const netlist::Gate& gate = netlist.gate(g);
    const double out_load = netlist.signal_load_ff(gate.output);
    double in_lb = 1e300;
    for (int fanin : gate.fanins) {
      in_lb = std::min(in_lb, min_slew[static_cast<std::size_t>(fanin)]);
    }
    double out_lb = 1e300;
    for (const liberty::LibCellVariant& variant : netlist.cell_of(g).variants()) {
      for (const liberty::PinTiming& pin : variant.pins) {
        for (const liberty::NldmTable* table : {&pin.slew_rise, &pin.slew_fall}) {
          out_lb = std::min(out_lb, monotone_in_slew(*table, out_load)
                                        ? table->lookup(in_lb, out_load)
                                        : table_lower_bound(*table, out_load));
        }
      }
    }
    min_slew[static_cast<std::size_t>(gate.output)] = std::max(out_lb, -1e300);
  }

  // Backward pass: reverse-topological max-accumulation. The eventual
  // arrival at an observe point is at least the arrival at any signal `f`
  // plus the stage delays along ANY single downstream path (STA arrivals
  // are maxima over inputs), so taking the best-bounded path is sound:
  // every stage contributes the minimum of its delay tables over variants,
  // physical pins and both edges, evaluated at the entry signal's minimum
  // slew (exact lookup for monotone tables, global table minimum
  // otherwise), at the gate's actual output load.
  std::vector<double> bound(static_cast<std::size_t>(num_signals), -1e300);
  for (int s : netlist.observe_points()) bound[static_cast<std::size_t>(s)] = 0.0;

  std::vector<BoundedTable> tables;
  const std::vector<int>& order = netlist.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const netlist::Gate& gate = netlist.gate(*it);
    const double out_bound = bound[static_cast<std::size_t>(gate.output)];
    if (out_bound == -1e300) continue;

    const double out_load = netlist.signal_load_ff(gate.output);
    tables.clear();
    for (const liberty::LibCellVariant& variant : netlist.cell_of(*it).variants()) {
      for (const liberty::PinTiming& pin : variant.pins) {
        for (const liberty::NldmTable* table : {&pin.delay_rise, &pin.delay_fall}) {
          tables.push_back({table, out_load, monotone_in_slew(*table, out_load),
                            table_lower_bound(*table, out_load)});
        }
      }
    }

    for (int fanin : gate.fanins) {
      double stage_lb = 1e300;
      for (const BoundedTable& t : tables) {
        stage_lb = std::min(stage_lb,
                            t.lower_bound(min_slew[static_cast<std::size_t>(fanin)]));
      }
      if (stage_lb == -1e300) continue;  // degenerate tables: no usable bound
      bound[static_cast<std::size_t>(fanin)] =
          std::max(bound[static_cast<std::size_t>(fanin)], stage_lb + out_bound);
    }
  }
  return bound;
}

TimingState::TimingState(const netlist::Netlist& netlist)
    : netlist_(&netlist), flat_(nullptr) {
  if (!netlist.finalized()) throw ContractError("TimingState: netlist not finalized");
  flat_ = &netlist.flat();
  const int n = netlist.num_signals();
  sig_.assign(static_cast<std::size_t>(n), SignalTiming{});
  load_ff_.resize(n);
  for (int s = 0; s < n; ++s) load_ff_[static_cast<std::size_t>(s)] = netlist.signal_load_ff(s);
  topo_rank_.assign(netlist.num_gates(), 0);
  gate_out_.resize(static_cast<std::size_t>(netlist.num_gates()));
  for (int g = 0; g < netlist.num_gates(); ++g) {
    gate_out_[static_cast<std::size_t>(g)] = netlist.gate(g).output;
  }
  const std::vector<int>& order = netlist.topological_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    topo_rank_[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  sink_offset_.resize(static_cast<std::size_t>(n) + 1);
  sink_offset_[0] = 0;
  for (int s = 0; s < n; ++s) {
    const std::vector<netlist::Sink>& sinks = netlist.sinks(s);
    for (const netlist::Sink& sink : sinks) {
      sink_rank_.push_back(
          static_cast<std::uint32_t>(topo_rank_[static_cast<std::size_t>(sink.gate)]));
    }
    sink_offset_[static_cast<std::size_t>(s) + 1] =
        static_cast<std::uint32_t>(sink_rank_.size());
  }
}

void TimingState::set_boundary(const BoundaryTiming& boundary) {
  if (!boundary.points.empty() &&
      boundary.points.size() !=
          static_cast<std::size_t>(netlist_->num_control_points())) {
    throw ContractError("TimingState::set_boundary: one point per control point");
  }
  boundary_ = boundary;
}

void TimingState::use_load_slices(const LoadSlicedTables* slices) {
  slices_ = slices;
  slice_views_.clear();
  if (slices == nullptr) return;
  slice_views_.reserve(static_cast<std::size_t>(netlist_->num_gates()));
  for (int g = 0; g < netlist_->num_gates(); ++g) {
    slice_views_.push_back(slices->gate_view(g));
  }
}

double TimingState::analyze(const sim::CircuitConfig& config, double delay_scale) {
  if (config.size() != static_cast<std::size_t>(netlist_->num_gates())) {
    throw ContractError("TimingState::analyze: config size mismatch");
  }
  const double pi_slew = netlist_->library().tech().default_pi_slew_ps;
  if (boundary_.points.empty()) {
    for (std::uint32_t s : flat_->control_points()) {
      sig_[s] = {0.0, 0.0, pi_slew, pi_slew};
    }
  } else {
    const std::vector<std::uint32_t>& cps = flat_->control_points();
    for (std::size_t i = 0; i < cps.size(); ++i) {
      const BoundaryTiming::Point& b = boundary_.points[i];
      const double slew = b.slew_ps > 0.0 ? b.slew_ps : pi_slew;
      sig_[cps[i]] = {b.arrival_ps, b.arrival_ps, slew, slew};
    }
  }
  for (std::uint32_t g : flat_->topo_order()) {
    sig_[flat_->output(g)] = evaluate_gate(*netlist_, config, static_cast<int>(g),
                                           sig_.data(), load_ff_, nullptr, delay_scale);
  }
  return circuit_delay_ps();
}

bool TimingState::recompute_gate(const sim::CircuitConfig& config, int gate,
                                 TimingUndo* undo) {
  const SignalTiming t = evaluate_gate(
      *netlist_, config, gate, sig_.data(), load_ff_,
      slice_views_.empty() ? nullptr : slice_views_.data(), 1.0);
  const std::size_t out = static_cast<std::size_t>(gate_out_[static_cast<std::size_t>(gate)]);
  SignalTiming& cur = sig_[out];
  if (std::abs(t.at_rise - cur.at_rise) < kEpsPs &&
      std::abs(t.at_fall - cur.at_fall) < kEpsPs &&
      std::abs(t.slew_rise - cur.slew_rise) < kEpsPs &&
      std::abs(t.slew_fall - cur.slew_fall) < kEpsPs) {
    return false;
  }
  if (undo != nullptr) {
    undo->entries.push_back({static_cast<int>(out), cur});
  }
  cur = t;
  return true;
}

double TimingState::update_after_gate_change(const sim::CircuitConfig& config, int gate,
                                             TimingUndo* undo) {
  // Process the affected cone in topological order; a min-heap over topo
  // rank guarantees each gate is re-evaluated at most once per update with
  // all its fanins final.
  using Item = std::pair<int, int>;  // (rank, gate)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  if (queued_.size() != static_cast<std::size_t>(netlist_->num_gates())) {
    queued_.assign(static_cast<std::size_t>(netlist_->num_gates()), false);
  }
  queue.push({topo_rank_[static_cast<std::size_t>(gate)], gate});
  queued_[static_cast<std::size_t>(gate)] = true;

  while (!queue.empty()) {
    const int g = queue.top().second;
    queue.pop();
    queued_[static_cast<std::size_t>(g)] = false;
    if (!recompute_gate(config, g, undo)) continue;
    const std::uint32_t out = flat_->output(static_cast<std::uint32_t>(g));
    const std::uint32_t* sink_gates = flat_->sink_gates(out);
    const std::uint32_t count = flat_->sink_count(out);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t sink = sink_gates[i];
      if (!queued_[sink]) {
        queue.push({topo_rank_[sink], static_cast<int>(sink)});
        queued_[sink] = true;
      }
    }
  }
  return circuit_delay_ps();
}

double TimingState::update_after_gate_change_bounded(
    const sim::CircuitConfig& config, int gate,
    const std::vector<double>& downstream_lb_ps, double ceiling_ps,
    TimingUndo* undo) {
  // Margin between the abort test and the caller's feasibility test. The
  // bound chain is exact in real arithmetic; the margin only has to absorb
  // double rounding across a few thousand adds/maxes (~1e-10 ps on
  // ps-scale values), so 1e-3 ps is vastly conservative while still far
  // below any meaningful delay difference. Trials violating the ceiling by
  // less than the margin simply fall through to the full propagation.
  constexpr double kAbortMarginPs = 1e-3;

  // Topo ranks are a permutation of the gates, so visiting pending ranks
  // in ascending order reproduces update_after_gate_change's processing
  // order exactly. Pending ranks live in a bitmap (member scratch -- this
  // runs thousands of times per leaf): pop = clear the lowest set bit at or
  // after the cursor, push = set a bit, which also dedups for free. Every
  // sink's rank exceeds its driver's, so pushes always land at or ahead of
  // the cursor word and nothing is ever missed. Word-scanning the cone's
  // rank range costs ~range/64 loads, replacing O(log n) heap churn per
  // visit. Both exits leave the bitmap all-zero for the next call.
  const std::vector<int>& rank_to_gate = netlist_->topological_order();
  const std::size_t num_words =
      (static_cast<std::size_t>(netlist_->num_gates()) + 63) / 64;
  if (pending_bits_.size() != num_words) pending_bits_.assign(num_words, 0);

  const std::uint32_t start_rank =
      static_cast<std::uint32_t>(topo_rank_[static_cast<std::size_t>(gate)]);
  pending_bits_[start_rank >> 6] |= std::uint64_t{1} << (start_rank & 63);

  for (std::size_t word = start_rank >> 6; word < num_words;) {
    const std::uint64_t bits = pending_bits_[word];
    if (bits == 0) {
      ++word;
      continue;
    }
    pending_bits_[word] = bits & (bits - 1);  // clear lowest set bit
    const std::size_t rank = (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    const int g = rank_to_gate[rank];
    if (!recompute_gate(config, g, undo)) continue;
    const std::size_t out = static_cast<std::size_t>(gate_out_[static_cast<std::size_t>(g)]);
    // `g` popped with all fanins settled, so its arrival is final for this
    // update; adding the optimistic downstream remainder lower-bounds the
    // eventual circuit delay.
    if (std::max(sig_[out].at_rise, sig_[out].at_fall) + downstream_lb_ps[out] >
        ceiling_ps + kAbortMarginPs) {
      // Unvisited pending ranks all sit at or beyond the cursor word.
      std::fill(pending_bits_.begin() + static_cast<std::ptrdiff_t>(word),
                pending_bits_.end(), std::uint64_t{0});
      return 1e300;
    }
    for (std::uint32_t i = sink_offset_[out]; i < sink_offset_[out + 1]; ++i) {
      const std::uint32_t r = sink_rank_[i];
      pending_bits_[r >> 6] |= std::uint64_t{1} << (r & 63);
    }
  }
  return circuit_delay_ps();
}

void TimingState::snapshot(TimingSnapshot& out) const { out.signals = sig_; }

void TimingState::restore(const TimingSnapshot& snap) {
  if (snap.signals.size() != sig_.size()) {
    throw ContractError("TimingState::restore: snapshot size mismatch");
  }
  sig_ = snap.signals;
}

void TimingState::revert(const TimingUndo& undo) {
  for (auto it = undo.entries.rbegin(); it != undo.entries.rend(); ++it) {
    sig_[static_cast<std::size_t>(it->signal)] = it->prev;
  }
}

double TimingState::circuit_delay_ps() const {
  double worst = 0.0;
  for (int s : netlist_->observe_points()) {
    const SignalTiming& t = sig_[static_cast<std::size_t>(s)];
    worst = std::max({worst, t.at_rise, t.at_fall});
  }
  return worst;
}

TimingState::Critical TimingState::critical_output() const {
  Critical crit;
  for (int s : netlist_->observe_points()) {
    const SignalTiming& t = sig_[static_cast<std::size_t>(s)];
    if (t.at_rise > crit.arrival_ps) crit = {s, true, t.at_rise};
    if (t.at_fall > crit.arrival_ps) crit = {s, false, t.at_fall};
  }
  return crit;
}

std::vector<int> TimingState::critical_path(const sim::CircuitConfig& config) const {
  std::vector<int> path;
  Critical point = critical_output();
  while (point.signal >= 0 && netlist_->driver(point.signal) >= 0) {
    const int gate = netlist_->driver(point.signal);
    path.push_back(gate);

    // Find the fanin pin whose arrival + delay realizes this output edge.
    const std::uint32_t* fanins = flat_->fanins(static_cast<std::uint32_t>(gate));
    const std::uint32_t num_pins = flat_->fanin_count(static_cast<std::uint32_t>(gate));
    const sim::GateConfig& gc = config[static_cast<std::size_t>(gate)];
    const liberty::LibCellVariant& variant = netlist_->cell_of(gate).variant(gc.variant);
    const double out_load = load_ff_[flat_->output(static_cast<std::uint32_t>(gate))];
    double best = -1e300;
    int best_sig = -1;
    for (std::uint32_t pin = 0; pin < num_pins; ++pin) {
      const int in_sig = static_cast<int>(fanins[pin]);
      const SignalTiming& in = sig_[static_cast<std::size_t>(in_sig)];
      const std::uint32_t phys = gc.mapping.logical_to_physical.empty()
                                     ? pin
                                     : static_cast<std::uint32_t>(
                                           gc.mapping.logical_to_physical[pin]);
      assert(phys < variant.pins.size());
      const liberty::PinTiming& timing = variant.pins[phys];
      double cand;
      if (point.rising) {
        cand = in.at_fall + timing.delay_rise.lookup(in.slew_fall, out_load);
      } else {
        cand = in.at_rise + timing.delay_fall.lookup(in.slew_rise, out_load);
      }
      if (cand > best) {
        best = cand;
        best_sig = in_sig;
      }
    }
    point.signal = best_sig;
    point.rising = !point.rising;  // inverting stage
    point.arrival_ps = best;
  }
  return path;
}

DelayBudget compute_delay_budget(const netlist::Netlist& netlist) {
  return compute_delay_budget(netlist, BoundaryTiming{});
}

DelayBudget compute_delay_budget(const netlist::Netlist& netlist,
                                 const BoundaryTiming& boundary) {
  DelayBudget budget;
  TimingState timing(netlist);
  timing.set_boundary(boundary);
  const sim::CircuitConfig fast = sim::fastest_config(netlist);
  budget.fast_delay_ps = timing.analyze(fast);

  // The paper's 100% reference replaces *every* device with its high-Vt,
  // thick-oxide counterpart -- a cell that deliberately is not part of the
  // swap library. Model it by scaling every stage's drive resistance by the
  // combined corner factor.
  const model::TechParams& tech = netlist.library().tech();
  const double scale =
      model::resistance_factor(tech, model::VtClass::kHigh, model::ToxClass::kThick);

  TimingState slow(netlist);
  slow.set_boundary(boundary);
  budget.slow_delay_ps = slow.analyze(fast, scale);
  return budget;
}

}  // namespace svtox::sta
