// Block-based static timing analysis over the characterized library.
//
// All cells in the library are inverting (INV/NAND/NOR/AOI/OAI), so output
// rise is driven by input fall and vice versa. Arrival times and slews
// propagate in topological order through bilinear NLDM lookups; loads come
// from fanout pin capacitances plus wire estimates and are
// variant-independent (Vt/Tox swaps keep the cell footprint, paper Sec. 4).
//
// The optimizer leans on `update_after_gate_change`: an incremental forward
// re-propagation from a single swapped gate with an undo log, which is the
// paper's "incremental computation of the delay ... as the search traverses
// through the gate tree".
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/leakage_eval.hpp"

namespace svtox::sta {

/// Undo log of one incremental update; pass back to revert().
struct TimingUndo {
  struct Entry {
    int signal;
    double at_rise, at_fall, slew_rise, slew_fall;
  };
  std::vector<Entry> entries;
  bool empty() const { return entries.empty(); }
};

/// Mutable timing state of one netlist under a circuit configuration.
class TimingState {
 public:
  explicit TimingState(const netlist::Netlist& netlist);

  /// Full (from-scratch) analysis under `config`. Returns circuit delay
  /// [ps]. `delay_scale` multiplies every stage delay and slew; it models
  /// uniform corner shifts (used for the all-slow budget endpoint).
  double analyze(const sim::CircuitConfig& config, double delay_scale = 1.0);

  /// Re-propagates timing after `gate`'s configuration changed, touching
  /// only the affected cone. Appends previous values of every modified
  /// signal to `undo` (if non-null). Returns the new circuit delay [ps].
  double update_after_gate_change(const sim::CircuitConfig& config, int gate,
                                  TimingUndo* undo);

  /// Restores the state recorded in `undo` (entries are replayed in
  /// reverse). The caller must revert in LIFO order w.r.t. updates.
  void revert(const TimingUndo& undo);

  /// Worst arrival over all primary outputs [ps].
  double circuit_delay_ps() const;

  double arrival_rise_ps(int signal) const { return at_rise_.at(signal); }
  double arrival_fall_ps(int signal) const { return at_fall_.at(signal); }
  double slew_rise_ps(int signal) const { return slew_rise_.at(signal); }
  double slew_fall_ps(int signal) const { return slew_fall_.at(signal); }

  /// Signal load used by the analysis [fF].
  double load_ff(int signal) const { return load_ff_.at(signal); }

  /// The most critical primary-output signal and its arrival.
  struct Critical {
    int signal = -1;
    bool rising = false;
    double arrival_ps = 0.0;
  };
  Critical critical_output() const;

  /// Gate indices on the critical path, output-first (derived by
  /// backtracking winning arrival edges).
  std::vector<int> critical_path(const sim::CircuitConfig& config) const;

 private:
  /// Recomputes `gate`'s output timing; returns true if anything changed.
  bool recompute_gate(const sim::CircuitConfig& config, int gate, TimingUndo* undo);

  const netlist::Netlist* netlist_;
  std::vector<double> at_rise_, at_fall_, slew_rise_, slew_fall_;  // per signal
  std::vector<double> load_ff_;                                    // per signal
  std::vector<int> topo_rank_;                                     // per gate
};

/// Delay budget arithmetic (paper Sec. 6): penalties are a percentage of
/// the spread between the all-fast delay and the all-slow delay.
struct DelayBudget {
  double fast_delay_ps = 0.0;  ///< All low-Vt / thin-Tox circuit delay.
  double slow_delay_ps = 0.0;  ///< All high-Vt / thick-Tox circuit delay.

  /// The delay constraint for a penalty fraction p in [0, 1]:
  /// fast + p * (slow - fast).
  double constraint_ps(double penalty_fraction) const {
    return fast_delay_ps + penalty_fraction * (slow_delay_ps - fast_delay_ps);
  }
};

/// Computes the budget endpoints for a netlist: the all-fast delay, and the
/// delay with every gate at an all-devices-slow assignment (built as a
/// temporary worst-case configuration over the library's variants by
/// scaling each gate's slowest available version).
DelayBudget compute_delay_budget(const netlist::Netlist& netlist);

}  // namespace svtox::sta
