// Block-based static timing analysis over the characterized library.
//
// All cells in the library are inverting (INV/NAND/NOR/AOI/OAI), so output
// rise is driven by input fall and vice versa. Arrival times and slews
// propagate in topological order through bilinear NLDM lookups; loads come
// from fanout pin capacitances plus wire estimates and are
// variant-independent (Vt/Tox swaps keep the cell footprint, paper Sec. 4).
//
// The optimizer leans on `update_after_gate_change`: an incremental forward
// re-propagation from a single swapped gate with an undo log, which is the
// paper's "incremental computation of the delay ... as the search traverses
// through the gate tree".
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/leakage_eval.hpp"

namespace svtox::sta {

/// One signal's timing quadruple. Kept as a single struct (instead of four
/// parallel arrays) so an incremental probe touches one cache line per
/// signal it reads or writes -- the leaf-evaluation hot path is memory
/// bound on these.
struct SignalTiming {
  double at_rise = 0.0, at_fall = 0.0;
  double slew_rise = 0.0, slew_fall = 0.0;
};

/// Undo log of one incremental update; pass back to revert().
struct TimingUndo {
  struct Entry {
    int signal;
    SignalTiming prev;
  };
  std::vector<Entry> entries;
  bool empty() const { return entries.empty(); }
};

/// A full copy of the per-signal timing array, filled by
/// TimingState::snapshot() and reapplied by restore(). Lets a leaf
/// evaluation start from a memcpy of a previously analyzed baseline
/// configuration instead of a from-scratch analyze() -- the values are
/// bit-identical to the analysis the snapshot was taken from.
struct TimingSnapshot {
  std::vector<SignalTiming> signals;
  bool empty() const { return signals.empty(); }
};

/// Load-sliced NLDM tables of a whole netlist: for every gate, every
/// library variant and physical pin, the four timing tables restricted to
/// the gate's actual output load (liberty::NldmLoadSlice). Loads are fixed
/// per instance, so this depends only on the netlist + library; instances
/// of the same cell driving the same load share one block. Attach to a
/// TimingState (use_load_slices) to make incremental re-propagation skip
/// the 2-D lookups -- results are bit-identical either way. Read-only
/// after construction and safe to share across threads.
class LoadSlicedTables {
 public:
  explicit LoadSlicedTables(const netlist::Netlist& netlist);

  /// The four slices of one (variant, physical pin) of `gate`'s cell.
  struct PinSlices {
    liberty::NldmLoadSlice delay_rise, delay_fall, slew_rise, slew_fall;
  };

  const PinSlices& pin(int gate, int variant, int physical_pin) const {
    const GateRef& ref = gates_[static_cast<std::size_t>(gate)];
    return blocks_[ref.block]
                  [static_cast<std::size_t>(variant) * ref.pins +
                   static_cast<std::size_t>(physical_pin)];
  }

  /// Flat view of one gate's block: slices of (variant v, physical pin p)
  /// live at base[v * pins + p]. TimingState caches these per gate so the
  /// hot path resolves a pin's slices with one indexed load instead of the
  /// gates_/blocks_ double indirection.
  struct GateView {
    const PinSlices* base = nullptr;
    std::uint32_t pins = 0;
  };
  GateView gate_view(int gate) const {
    const GateRef& ref = gates_[static_cast<std::size_t>(gate)];
    return {blocks_[ref.block].data(), ref.pins};
  }

 private:
  struct GateRef {
    std::uint32_t block = 0;  ///< Index into blocks_.
    std::uint32_t pins = 0;   ///< Pins per variant (block row stride).
  };
  std::vector<GateRef> gates_;                 ///< Per gate.
  std::vector<std::vector<PinSlices>> blocks_;  ///< Per (cell, load), [variant*pins+pin].
};

/// Measured upstream timing at the control points, used to seed a cone's
/// analysis with the arrival/slew its boundary inputs actually see in the
/// enclosing circuit (instead of the default zero-arrival / library-slew
/// seed). One entry per control point, in Netlist::control_points() order;
/// empty = defaults everywhere. A point with slew_ps <= 0 keeps the
/// library's default primary-input slew.
struct BoundaryTiming {
  struct Point {
    double arrival_ps = 0.0;
    double slew_ps = 0.0;
  };
  std::vector<Point> points;
  bool empty() const { return points.empty(); }
};

/// Mutable timing state of one netlist under a circuit configuration.
class TimingState {
 public:
  explicit TimingState(const netlist::Netlist& netlist);

  /// Full (from-scratch) analysis under `config`. Returns circuit delay
  /// [ps]. `delay_scale` multiplies every stage delay and slew; it models
  /// uniform corner shifts (used for the all-slow budget endpoint).
  double analyze(const sim::CircuitConfig& config, double delay_scale = 1.0);

  /// Seeds every subsequent analyze() with measured control-point
  /// arrivals/slews instead of the zero-arrival default. The seeds are not
  /// scaled by `delay_scale` -- the upstream context is fixed; only this
  /// cone's devices shift with the corner. Pass an empty BoundaryTiming to
  /// restore the defaults; a non-empty one must have exactly one point per
  /// control point. Incremental updates never touch control-point timing,
  /// so the seeds survive update_after_gate_change/revert unchanged.
  void set_boundary(const BoundaryTiming& boundary);

  /// Re-propagates timing after `gate`'s configuration changed, touching
  /// only the affected cone. Appends previous values of every modified
  /// signal to `undo` (if non-null). Returns the new circuit delay [ps].
  double update_after_gate_change(const sim::CircuitConfig& config, int gate,
                                  TimingUndo* undo);

  /// update_after_gate_change with early rejection: `downstream_lb_ps` is a
  /// per-signal lower bound on the remaining combinational delay to any
  /// observe point (see downstream_delay_lower_bounds_ps). As soon as a
  /// finalized arrival plus that bound provably exceeds `ceiling_ps`, the
  /// eventual circuit delay must exceed it too, so the propagation aborts
  /// and returns +infinity (1e300); the caller reverts via `undo` exactly
  /// as after a completed update. When no abort triggers, the result -- and
  /// every touched signal -- is bit-identical to the unbounded update, so
  /// any caller that reverts whenever the returned delay is above
  /// `ceiling_ps` observes identical behavior either way.
  double update_after_gate_change_bounded(const sim::CircuitConfig& config, int gate,
                                          const std::vector<double>& downstream_lb_ps,
                                          double ceiling_ps, TimingUndo* undo);

  /// Attaches load-sliced tables (caller-owned, must outlive this state;
  /// pass nullptr to detach). Incremental updates then evaluate gates
  /// through the 1-D slices -- bit-identical results, roughly half the
  /// lookup cost. The amortized leaf evaluators attach the problem's
  /// shared slices; from-scratch evaluations run without them.
  void use_load_slices(const LoadSlicedTables* slices);

  /// Restores the state recorded in `undo` (entries are replayed in
  /// reverse). The caller must revert in LIFO order w.r.t. updates.
  void revert(const TimingUndo& undo);

  /// Copies the per-signal timing arrays into `out` (reusing its capacity).
  void snapshot(TimingSnapshot& out) const;

  /// Reapplies a snapshot taken from this netlist's TimingState; afterwards
  /// every query returns exactly what it returned when the snapshot was
  /// taken.
  void restore(const TimingSnapshot& snap);

  /// Worst arrival over all primary outputs [ps].
  double circuit_delay_ps() const;

  double arrival_rise_ps(int signal) const { return sig_.at(signal).at_rise; }
  double arrival_fall_ps(int signal) const { return sig_.at(signal).at_fall; }
  double slew_rise_ps(int signal) const { return sig_.at(signal).slew_rise; }
  double slew_fall_ps(int signal) const { return sig_.at(signal).slew_fall; }

  /// Signal load used by the analysis [fF].
  double load_ff(int signal) const { return load_ff_.at(signal); }

  /// The most critical primary-output signal and its arrival.
  struct Critical {
    int signal = -1;
    bool rising = false;
    double arrival_ps = 0.0;
  };
  Critical critical_output() const;

  /// Gate indices on the critical path, output-first (derived by
  /// backtracking winning arrival edges).
  std::vector<int> critical_path(const sim::CircuitConfig& config) const;

 private:
  /// Recomputes `gate`'s output timing; returns true if anything changed.
  bool recompute_gate(const sim::CircuitConfig& config, int gate, TimingUndo* undo);

  const netlist::Netlist* netlist_;
  const netlist::FlatNetlist* flat_;  ///< SoA view; hot loops read this.
  const LoadSlicedTables* slices_ = nullptr;  ///< Optional, caller-owned.
  BoundaryTiming boundary_;        ///< Empty = default control-point seeds.
  std::vector<SignalTiming> sig_;  // per signal
  std::vector<double> load_ff_;    // per signal
  std::vector<int> topo_rank_;     // per gate
  std::vector<int> gate_out_;      // per gate: driven signal id
  // Flattened fanout in rank space: the topo ranks of signal s's sink
  // gates are sink_rank_[sink_offset_[s] .. sink_offset_[s+1]). Built once
  // in the constructor; spares the hot loop the per-signal vector (and its
  // bounds-checked .at()) of Netlist::sinks().
  std::vector<std::uint32_t> sink_offset_;  // per signal, +1 sentinel
  std::vector<std::uint32_t> sink_rank_;
  /// Per-gate slice rows, cached from slices_ (empty when detached).
  std::vector<LoadSlicedTables::GateView> slice_views_;
  /// Scratch of update_after_gate_change_bounded: pending topo ranks as a
  /// bitmap (bit r = rank r queued). Popping the lowest set bit visits the
  /// cone in ascending rank -- the exact order of the rank min-heap it
  /// replaces -- and both exits leave the bitmap all-zero for the next call.
  std::vector<std::uint64_t> pending_bits_;
  /// Scratch of update_after_gate_change: queued flag per gate, reused
  /// across calls (every pop clears its flag, so the vector is all-false
  /// again when the heap drains -- no per-call allocation).
  std::vector<bool> queued_;
};

/// Per-signal lower bound [ps] on the combinational delay from the signal
/// to any observe point, valid for EVERY variant selection, pin mapping and
/// input slew (each stage contributes the minimum of its delay tables over
/// all variants, physical pins and the whole physical slew range, at the
/// gate's actual output load). Signals that cannot reach an observe point
/// get -infinity, so a bound test against them never triggers. The vector
/// depends only on the netlist and library -- leaf searches compute it once
/// and use it to reject delay-infeasible variant trials without propagating
/// their full fanout cones (update_after_gate_change_bounded).
std::vector<double> downstream_delay_lower_bounds_ps(const netlist::Netlist& netlist);

/// Delay budget arithmetic (paper Sec. 6): penalties are a percentage of
/// the spread between the all-fast delay and the all-slow delay.
struct DelayBudget {
  double fast_delay_ps = 0.0;  ///< All low-Vt / thin-Tox circuit delay.
  double slow_delay_ps = 0.0;  ///< All high-Vt / thick-Tox circuit delay.

  /// The delay constraint for a penalty fraction p in [0, 1]:
  /// fast + p * (slow - fast).
  double constraint_ps(double penalty_fraction) const {
    return fast_delay_ps + penalty_fraction * (slow_delay_ps - fast_delay_ps);
  }
};

/// Computes the budget endpoints for a netlist: the all-fast delay, and the
/// delay with every gate at an all-devices-slow assignment (built as a
/// temporary worst-case configuration over the library's variants by
/// scaling each gate's slowest available version).
DelayBudget compute_delay_budget(const netlist::Netlist& netlist);

/// Budget endpoints with the control points seeded from `boundary` (both
/// the fast and the slow analysis see the same upstream context). With an
/// empty boundary this is exactly compute_delay_budget(netlist).
DelayBudget compute_delay_budget(const netlist::Netlist& netlist,
                                 const BoundaryTiming& boundary);

}  // namespace svtox::sta
