#include "util/simd.hpp"

#include <array>

#if defined(__x86_64__) || defined(__i386__)
#define SVTOX_SIMD_X86 1
#include <immintrin.h>
#else
#define SVTOX_SIMD_X86 0
#endif

namespace svtox::simd {

bool has_avx2() {
#if SVTOX_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

const char* dispatch_name() { return has_avx2() ? "avx2" : "portable"; }

namespace {

#if SVTOX_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))

/// Nibble -> 4-lane blend mask (all-ones where the lane's bit is set).
alignas(32) constexpr std::uint64_t kNibbleMask[16][4] = {
    {0, 0, 0, 0},    {~0ULL, 0, 0, 0},         {0, ~0ULL, 0, 0},
    {~0ULL, ~0ULL, 0, 0},                      {0, 0, ~0ULL, 0},
    {~0ULL, 0, ~0ULL, 0},                      {0, ~0ULL, ~0ULL, 0},
    {~0ULL, ~0ULL, ~0ULL, 0},                  {0, 0, 0, ~0ULL},
    {~0ULL, 0, 0, ~0ULL},                      {0, ~0ULL, 0, ~0ULL},
    {~0ULL, ~0ULL, 0, ~0ULL},                  {0, 0, ~0ULL, ~0ULL},
    {~0ULL, 0, ~0ULL, ~0ULL},                  {0, ~0ULL, ~0ULL, ~0ULL},
    {~0ULL, ~0ULL, ~0ULL, ~0ULL},
};

__attribute__((target("avx2"))) void scatter_add_avx2(double* totals,
                                                      std::uint64_t mask,
                                                      double value) {
  const __m256d vval = _mm256_set1_pd(value);
  while (mask != 0) {
    const unsigned group = static_cast<unsigned>(__builtin_ctzll(mask)) >> 2;
    const unsigned bits = static_cast<unsigned>(mask >> (group * 4)) & 0xFu;
    double* slot = totals + group * 4;
    const __m256d lane_mask =
        _mm256_load_pd(reinterpret_cast<const double*>(kNibbleMask[bits]));
    const __m256d current = _mm256_loadu_pd(slot);
    // blendv keeps unselected lanes bit-exact (adding 0.0 instead would
    // rewrite a -0.0 lane to +0.0).
    const __m256d summed = _mm256_add_pd(current, vval);
    _mm256_storeu_pd(slot, _mm256_blendv_pd(current, summed, lane_mask));
    mask &= ~(0xFULL << (group * 4));
  }
}

/// kLaneBit[group][j] = the bit lane 4*group+j tests in a packed word.
constexpr std::array<std::array<std::uint64_t, 4>, 16> make_lane_bits() {
  std::array<std::array<std::uint64_t, 4>, 16> bits{};
  for (int group = 0; group < 16; ++group) {
    for (int j = 0; j < 4; ++j) {
      bits[static_cast<std::size_t>(group)][static_cast<std::size_t>(j)] =
          1ULL << (4 * group + j);
    }
  }
  return bits;
}

alignas(32) constexpr auto kLaneBit = make_lane_bits();

__attribute__((target("avx2"))) void select_add1_avx2(double* totals,
                                                      std::uint64_t w0,
                                                      const double* leak) {
  const __m256i v0 = _mm256_set1_epi64x(static_cast<long long>(w0));
  const __m256d l0 = _mm256_set1_pd(leak[0]);
  const __m256d l1 = _mm256_set1_pd(leak[1]);
  for (int group = 0; group < 16; ++group) {
    const __m256i bit = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kLaneBit[static_cast<std::size_t>(group)].data()));
    const __m256d m0 = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(v0, bit), bit));
    double* slot = totals + 4 * group;
    _mm256_storeu_pd(slot, _mm256_add_pd(_mm256_loadu_pd(slot),
                                         _mm256_blendv_pd(l0, l1, m0)));
  }
}

__attribute__((target("avx2"))) void select_add2_avx2(double* totals,
                                                      std::uint64_t w0,
                                                      std::uint64_t w1,
                                                      const double* leak) {
  const __m256i v0 = _mm256_set1_epi64x(static_cast<long long>(w0));
  const __m256i v1 = _mm256_set1_epi64x(static_cast<long long>(w1));
  const __m256d l00 = _mm256_set1_pd(leak[0]);
  const __m256d l01 = _mm256_set1_pd(leak[1]);
  const __m256d l10 = _mm256_set1_pd(leak[2]);
  const __m256d l11 = _mm256_set1_pd(leak[3]);
  for (int group = 0; group < 16; ++group) {
    const __m256i bit = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kLaneBit[static_cast<std::size_t>(group)].data()));
    const __m256d m0 = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(v0, bit), bit));
    const __m256d m1 = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(v1, bit), bit));
    const __m256d lo = _mm256_blendv_pd(l00, l01, m0);
    const __m256d hi = _mm256_blendv_pd(l10, l11, m0);
    double* slot = totals + 4 * group;
    _mm256_storeu_pd(slot, _mm256_add_pd(_mm256_loadu_pd(slot),
                                         _mm256_blendv_pd(lo, hi, m1)));
  }
}

__attribute__((target("avx2"))) std::size_t locate_hi_avx2(const double* padded_axis,
                                                           std::size_t size,
                                                           double x) {
  static_assert(kAxisPad == 8, "locate_hi_avx2 assumes an 8-knot pad");
  const __m256d vx = _mm256_set1_pd(x);
  const __m256d lo = _mm256_loadu_pd(padded_axis);
  const __m256d hi = _mm256_loadu_pd(padded_axis + 4);
  const unsigned below =
      static_cast<unsigned>(_mm256_movemask_pd(_mm256_cmp_pd(lo, vx, _CMP_LT_OQ))) |
      (static_cast<unsigned>(
           _mm256_movemask_pd(_mm256_cmp_pd(hi, vx, _CMP_LT_OQ)))
       << 4);
  // The scalar loop inspects knots [1, size - 2] only: knot 0 never moves
  // `hi`, and the loop stops at size - 1 regardless of the last compare.
  const unsigned allowed = (1u << (size - 1)) - 2u;
  return 1 + static_cast<std::size_t>(__builtin_popcount(below & allowed));
}

#endif  // SVTOX_SIMD_X86

}  // namespace

void scatter_add(double* totals, std::uint64_t mask, double value) {
#if SVTOX_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  static void (*const fn)(double*, std::uint64_t, double) =
      has_avx2() ? &scatter_add_avx2 : &scatter_add_portable;
  fn(totals, mask, value);
#else
  scatter_add_portable(totals, mask, value);
#endif
}

void select_add1(double* totals, std::uint64_t w0, const double* leak) {
#if SVTOX_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  static void (*const fn)(double*, std::uint64_t, const double*) =
      has_avx2() ? &select_add1_avx2 : &select_add1_portable;
  fn(totals, w0, leak);
#else
  select_add1_portable(totals, w0, leak);
#endif
}

void select_add2(double* totals, std::uint64_t w0, std::uint64_t w1,
                 const double* leak) {
#if SVTOX_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  static void (*const fn)(double*, std::uint64_t, std::uint64_t, const double*) =
      has_avx2() ? &select_add2_avx2 : &select_add2_portable;
  fn(totals, w0, w1, leak);
#else
  select_add2_portable(totals, w0, w1, leak);
#endif
}

std::size_t locate_hi(const double* padded_axis, std::size_t size, double x) {
#if SVTOX_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  static std::size_t (*const fn)(const double*, std::size_t, double) =
      has_avx2() ? &locate_hi_avx2 : &locate_hi_portable;
  return fn(padded_axis, size, x);
#else
  return locate_hi_portable(padded_axis, size, x);
#endif
}

}  // namespace svtox::simd
