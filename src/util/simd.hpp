// Small SIMD kernels behind runtime dispatch.
//
// The packed simulation subsystem (sim/packed.hpp) does its heavy lifting
// with portable std::uint64_t word ops; the two inner loops below are the
// only places that additionally benefit from explicit vector instructions:
//
//  * scatter_add -- "add `value` into totals[lane] for every set bit of
//    `mask`", the per-state lane accumulation of the packed leakage
//    kernels. The portable path walks set bits (ctz); the AVX2 path
//    processes four lanes per blend-add.
//  * select_add1 / select_add2 -- the fused form used by the Monte-Carlo
//    leakage accumulation for 1- and 2-input gates (the bulk of every
//    netlist): each lane reads its gate-local state directly from the
//    packed pin words and adds the matching leak-table entry, so a gate
//    costs one branchless sweep over the 64 lanes instead of one
//    scatter_add per state. The AVX2 path selects the leak value with
//    blendv chains keyed on per-lane bit tests.
//  * locate_hi -- the ascending-axis segment search of the NLDM 1-D
//    interpolation (liberty::NldmLoadSlice::lookup). The portable path is
//    the historical scalar loop; the SIMD path turns it into a compare +
//    popcount over an axis padded to kAxisPad knots.
//
// Every variant is bit-identical to its portable reference (the AVX2
// scatter_add preserves untouched lanes exactly via blendv rather than
// adding 0.0, which would rewrite -0.0 lanes), so dispatch never changes
// results -- a property test drives all variants against the reference.
// AVX2 use is decided once per process from CPUID; non-x86 builds compile
// the portable paths only.
#pragma once

#include <cstdint>
#include <cstddef>

namespace svtox::simd {

/// Number of knots locate_hi expects its padded axis to hold. Axes shorter
/// than this must be padded with +infinity (ascending order preserved).
inline constexpr std::size_t kAxisPad = 8;

/// True when the running CPU supports AVX2 and the build can emit it.
/// Cached after the first call; always false on non-x86 targets.
bool has_avx2();

/// Human-readable name of the dispatched implementation ("avx2" or
/// "portable"); recorded in benchmark provenance.
const char* dispatch_name();

/// totals[lane] += value for every set bit `lane` of `mask`. Lanes whose
/// bit is clear are left bit-exactly untouched.
void scatter_add(double* totals, std::uint64_t mask, double value);

/// Portable reference for scatter_add (exposed for tests and benches).
inline void scatter_add_portable(double* totals, std::uint64_t mask, double value) {
  while (mask != 0) {
    totals[static_cast<std::size_t>(__builtin_ctzll(mask))] += value;
    mask &= mask - 1;
  }
}

/// totals[lane] += leak[bit(w0, lane)] for ALL 64 lanes (unmasked: callers
/// with fewer than 64 live lanes must simply never read the tail lanes).
/// `leak` holds the two per-state values of a 1-input gate.
void select_add1(double* totals, std::uint64_t w0, const double* leak);

/// totals[lane] += leak[bit(w0, lane) | bit(w1, lane) << 1] for ALL 64
/// lanes. `leak` holds the four per-state values of a 2-input gate, state
/// bit p = pin p (the cellkit local-state convention).
void select_add2(double* totals, std::uint64_t w0, std::uint64_t w1,
                 const double* leak);

/// Portable reference for select_add1 (exposed for tests and benches).
inline void select_add1_portable(double* totals, std::uint64_t w0,
                                 const double* leak) {
  for (int lane = 0; lane < 64; ++lane) {
    totals[lane] += leak[(w0 >> lane) & 1u];
  }
}

/// Portable reference for select_add2 (exposed for tests and benches).
inline void select_add2_portable(double* totals, std::uint64_t w0,
                                 std::uint64_t w1, const double* leak) {
  for (int lane = 0; lane < 64; ++lane) {
    totals[lane] += leak[((w0 >> lane) & 1u) | (((w1 >> lane) & 1u) << 1)];
  }
}

/// Upper knot index of the interpolation segment for `x` on an ascending
/// axis of `size` knots (2 <= size <= kAxisPad), padded to kAxisPad entries
/// with +infinity. Bit-identical to the scalar loop
///   hi = 1; while (hi + 1 < size && axis[hi] < x) ++hi;
std::size_t locate_hi(const double* padded_axis, std::size_t size, double x);

/// Portable reference for locate_hi (exposed for tests and benches).
inline std::size_t locate_hi_portable(const double* axis, std::size_t size, double x) {
  std::size_t hi = 1;
  while (hi + 1 < size && axis[hi] < x) ++hi;
  return hi;
}

}  // namespace svtox::simd
