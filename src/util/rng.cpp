#include "util/rng.hpp"

namespace svtox {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : s_) word = splitmix64(seed);
  // A state of all zeros would be a fixed point; splitmix64 cannot produce
  // four zero outputs in a row, but guard anyway for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Debiased modulo: rejection sampling on the top range. bound is expected
  // to be small relative to 2^64 in this codebase, so rejection is rare.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 high bits into the mantissa range [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::vector<bool> Rng::next_bits(std::size_t n) {
  std::vector<bool> bits(n);
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 64 == 0) word = next_u64();
    bits[i] = (word >> (i % 64)) & 1u;
  }
  return bits;
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace svtox
