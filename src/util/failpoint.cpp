#include "util/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace svtox {

namespace {

/// splitmix64 step: one independent, deterministic stream per point so a
/// probabilistic spec fires the same way on every run.
double next_uniform(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

FailPoints& FailPoints::instance() {
  static FailPoints registry;
  return registry;
}

FailPoints::FailPoints() {
  const char* env = std::getenv("SVTOX_FAILPOINTS");
  if (env != nullptr && *env != '\0') configure(env);
}

void FailPoints::configure(const std::string& spec) {
  std::map<std::string, Point> points;
  for (std::string_view entry : split(spec, ',')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw ContractError("fail point spec needs name=action: '" +
                          std::string(entry) + "'");
    }
    const std::string name(trim(entry.substr(0, eq)));
    std::string_view rest = trim(entry.substr(eq + 1));

    Point point;
    // Optional ':' param (probability / stall ms) and '*' count, in either
    // order after the action word.
    std::string_view action = rest;
    std::string_view param;
    const std::size_t colon = rest.find(':');
    if (colon != std::string_view::npos) {
      param = rest.substr(colon + 1);
      action = rest.substr(0, colon);
    }
    const std::size_t star = action.find('*');
    if (star != std::string_view::npos) {
      point.max_fires = static_cast<std::uint64_t>(parse_double(action.substr(star + 1)));
      action = action.substr(0, star);
    } else if (const std::size_t pstar = param.find('*');
               pstar != std::string_view::npos) {
      point.max_fires = static_cast<std::uint64_t>(parse_double(param.substr(pstar + 1)));
      param = param.substr(0, pstar);
    }

    if (action == "error") {
      point.action = Action::kError;
      if (!param.empty()) point.probability = parse_double(param);
      if (point.probability < 0.0 || point.probability > 1.0) {
        throw ContractError("fail point probability must be in [0, 1]: '" +
                            std::string(entry) + "'");
      }
    } else if (action == "hang") {
      point.action = Action::kHang;
      if (!param.empty()) point.stall_ms = static_cast<int>(parse_double(param));
      if (point.stall_ms < 0 || point.stall_ms > 60000) {
        throw ContractError("fail point stall must be in [0, 60000] ms: '" +
                            std::string(entry) + "'");
      }
    } else if (action == "off") {
      point.action = Action::kOff;
    } else if (action == "drop") {
      point.action = Action::kDrop;
    } else if (action == "delay") {
      point.action = Action::kDelay;
      if (!param.empty()) point.stall_ms = static_cast<int>(parse_double(param));
      if (point.stall_ms < 0 || point.stall_ms > 60000) {
        throw ContractError("fail point delay must be in [0, 60000] ms: '" +
                            std::string(entry) + "'");
      }
    } else if (action == "truncate") {
      point.action = Action::kTruncate;
      if (!param.empty()) point.net_param = static_cast<int>(parse_double(param));
      if (point.net_param < 0) {
        throw ContractError("fail point truncate bytes must be >= 0: '" +
                            std::string(entry) + "'");
      }
    } else if (action == "reset-after") {
      point.action = Action::kReset;
      if (!param.empty()) point.net_param = static_cast<int>(parse_double(param));
      if (point.net_param < 0) {
        throw ContractError("fail point reset-after bytes must be >= 0: '" +
                            std::string(entry) + "'");
      }
    } else {
      throw ContractError(
          "unknown fail point action '" + std::string(action) +
          "' (want error|hang|off|drop|delay|truncate|reset-after)");
    }
    point.rng_state = 0x5eedfa17'f01a75ULL;
    points[name] = point;
  }

  std::lock_guard<std::mutex> lock(mu_);
  points_ = std::move(points);
  armed_.store(points_.size(), std::memory_order_release);
}

void FailPoints::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(0, std::memory_order_release);
}

std::uint64_t FailPoints::triggers(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fired;
}

bool FailPoints::roll(const char* name) {
  int stall_ms = -1;
  bool error = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return false;
    Point& point = it->second;
    if (point.action == Action::kOff) return false;
    if (point.max_fires != 0 && point.fired >= point.max_fires) return false;
    if (point.action == Action::kError &&
        point.probability < 1.0 &&
        next_uniform(point.rng_state) >= point.probability) {
      return false;
    }
    ++point.fired;
    if (point.action == Action::kHang) {
      stall_ms = point.stall_ms;
    } else {
      error = true;
    }
  }
  // Stall outside the lock: a hanging point must not serialize every other
  // hook in the process.
  if (stall_ms >= 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  return error;
}

void FailPoints::evaluate(const char* name) {
  if (armed_.load(std::memory_order_acquire) == 0) return;
  if (roll(name)) {
    throw Error(ErrorCode::kIo,
                std::string("injected fault at fail point '") + name + "'");
  }
}

bool FailPoints::fails(const char* name) {
  if (armed_.load(std::memory_order_acquire) == 0) return false;
  return roll(name);
}

NetFault FailPoints::net_fault(const char* name) {
  if (armed_.load(std::memory_order_acquire) == 0) return NetFault{};
  NetFault fault;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return NetFault{};
    Point& point = it->second;
    if (point.max_fires != 0 && point.fired >= point.max_fires) return NetFault{};
    switch (point.action) {
      case Action::kDrop:
        fault.kind = NetFault::Kind::kDrop;
        break;
      case Action::kDelay:
        fault.kind = NetFault::Kind::kDelay;
        fault.param = point.stall_ms;
        break;
      case Action::kTruncate:
        fault.kind = NetFault::Kind::kTruncate;
        fault.param = point.net_param;
        break;
      case Action::kReset:
        fault.kind = NetFault::Kind::kReset;
        fault.param = point.net_param;
        break;
      default:
        return NetFault{};  // error/hang/off belong to the other hooks
    }
    ++point.fired;
  }
  // Like 'hang': the stall happens outside the lock so one delayed
  // connection cannot serialize every hook in the process.
  if (fault.kind == NetFault::Kind::kDelay && fault.param > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(fault.param));
  }
  return fault;
}

}  // namespace svtox
