#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace svtox {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::size_t parse_size(std::string_view s) {
  s = trim(s);
  std::size_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw ContractError("parse_size: malformed integer '" + std::string(s) + "'");
  }
  return value;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw ContractError("parse_double: malformed number '" + std::string(s) + "'");
  }
  return value;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace svtox
