// Monotonic wall-clock timing for heuristic time limits and runtime columns.
#pragma once

#include <chrono>

namespace svtox {

/// Stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline used by the time-limited heuristic (Heu2).
class Deadline {
 public:
  /// A deadline `budget_seconds` from now. Non-positive budgets expire
  /// immediately.
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool expired() const { return timer_.seconds() >= budget_; }
  double remaining() const { return budget_ - timer_.seconds(); }
  double budget() const { return budget_; }

 private:
  Timer timer_;
  double budget_;
};

}  // namespace svtox
