// Minimal leveled logging to stderr.
//
// The optimizer is a batch tool; logging exists for progress visibility in
// the bench harnesses and is off by default in tests.
#pragma once

#include <string>

namespace svtox {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold. Messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one line to stderr if `level` passes the threshold.
void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace svtox
