// 64-bit FNV-1a over raw bytes: the checksum primitive shared by the
// search checkpoint format and the solution cache's disk entries. The
// service layer's typed fingerprint hasher (svc::Fnv) builds on the same
// function; this header exists so lower layers (opt, util) can checksum
// without depending on svc.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace svtox {

inline std::uint64_t fnv1a64(std::string_view bytes,
                             std::uint64_t seed = 14695981039346656037ULL) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// 16-hex-digit lowercase rendering of a 64-bit hash.
inline std::string hex64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace svtox
