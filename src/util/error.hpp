// Error types shared across the svtox libraries.
//
// The library follows a simple policy: constructor/loader failures and
// API-contract violations throw; hot-path algorithmic code communicates
// through return values and never throws.
#pragma once

#include <stdexcept>
#include <string>

namespace svtox {

/// Thrown when an input artifact (netlist, library file, configuration)
/// cannot be parsed or violates a structural invariant.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& file, int line, const std::string& what)
      : std::runtime_error(file + ":" + std::to_string(line) + ": " + what),
        file_(file),
        line_(line) {}

  const std::string& file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  std::string file_;
  int line_;
};

/// Thrown when an API precondition is violated (unknown cell name, pin index
/// out of range, netlist/library mismatch, ...).
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace svtox
