// Error types shared across the svtox libraries.
//
// The library follows a simple policy: constructor/loader failures and
// API-contract violations throw; hot-path algorithmic code communicates
// through return values and never throws.
//
// Failures that a *caller* may want to react to programmatically (retry a
// transient I/O error, restart after a corrupt artifact, surface a timeout
// as a structured result) carry an ErrorCode via util's Error class, so
// the service layer can distinguish retryable from fatal without string
// matching. API misuse stays a ContractError (logic_error): retrying a
// contract violation never helps.
#pragma once

#include <stdexcept>
#include <string>

namespace svtox {

/// Coarse failure taxonomy. Keep this small: codes exist so callers can
/// branch (retry / restart / give up), not to mirror errno.
enum class ErrorCode {
  kParse,      ///< Malformed input artifact (netlist, library, JSON, ...).
  kIo,         ///< Read/write/connect failure on a file or socket.
  kCorrupt,    ///< Artifact read back fails its integrity check.
  kTimeout,    ///< A per-request or per-job deadline expired.
  kCancelled,  ///< Cooperatively cancelled before completion.
  kBusy,       ///< Server at capacity; admission control rejected the work.
};

const char* to_string(ErrorCode code);

/// Base of all recoverable svtox failures. `retryable()` is the service
/// layer's routing bit: transient faults (I/O, timeout) are worth a
/// bounded retry; parse/corrupt/cancelled are not -- the same input will
/// fail the same way.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const noexcept { return code_; }
  bool retryable() const noexcept {
    return code_ == ErrorCode::kIo || code_ == ErrorCode::kTimeout ||
           code_ == ErrorCode::kBusy;
  }

 private:
  ErrorCode code_;
};

/// Thrown when an input artifact (netlist, library file, configuration)
/// cannot be parsed or violates a structural invariant. Carries the source
/// file name and line number so parse diagnostics always say *where*.
class ParseError : public Error {
 public:
  ParseError(const std::string& file, int line, const std::string& what)
      : Error(ErrorCode::kParse,
              file + ":" + std::to_string(line) + ": " + what),
        file_(file),
        line_(line) {}

  const std::string& file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  std::string file_;
  int line_;
};

/// Thrown when an API precondition is violated (unknown cell name, pin index
/// out of range, netlist/library mismatch, ...).
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kBusy: return "busy";
  }
  return "?";
}

}  // namespace svtox
