// Deterministic pseudo-random number generation.
//
// All stochastic parts of the reproduction (random-vector leakage averages,
// random circuit generation) route through this xoshiro256** generator so
// that every table and figure is reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace svtox {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference algorithm).
/// Fast, high-quality, and — unlike std::mt19937 — guaranteed to produce the
/// same stream on every standard library implementation.
class Rng {
 public:
  /// Seeds the four 64-bit state words from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed0f570cc0de04ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) with Lemire's rejection-free-ish method.
  /// bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform boolean.
  bool next_bool() { return (next_u64() >> 63) != 0; }

  /// A vector of n uniform random bits packed into bools.
  std::vector<bool> next_bits(std::size_t n);

  /// Splits off an independent generator (distinct stream for subtasks).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace svtox
