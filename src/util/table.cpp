#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace svtox {

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() > header_.size()) {
    throw ContractError("AsciiTable: row wider than header");
  }
  if (!header_.empty()) row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void AsciiTable::add_separator() { separators_.push_back(rows_.size()); }

std::string AsciiTable::render() const {
  const std::size_t cols =
      header_.empty() ? (rows_.empty() ? 0 : rows_.front().size()) : header_.size();
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size() && c < cols; ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto rule = [&] {
    for (std::size_t c = 0; c < cols; ++c) {
      out << '+' << std::string(width[c] + 2, '-');
    }
    out << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };

  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) != separators_.end()) rule();
    emit(rows_[r]);
  }
  rule();
  return out.str();
}

std::string AsciiTable::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << escape(row[c]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace svtox
