// ASCII table rendering for the paper-style result tables.
#pragma once

#include <string>
#include <vector>

namespace svtox {

/// Column-aligned ASCII table builder. Used by the bench harnesses to print
/// rows in the same layout as the paper's Tables 1-5.
class AsciiTable {
 public:
  /// Sets the header row; defines the column count.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count (short rows are
  /// padded with empty cells).
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next added row.
  void add_separator();

  /// Renders the table with column-width alignment.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

  /// Renders all rows as CSV (header first). Cells containing commas or
  /// quotes are quoted per RFC 4180.
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // row indices preceded by a rule
};

}  // namespace svtox
