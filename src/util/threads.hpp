// Thread-count resolution shared by the parallel engine components
// (Monte-Carlo leakage, the state-search root split).
#pragma once

#include <algorithm>
#include <thread>

namespace svtox {

/// Resolves a user-facing thread-count knob: values <= 0 mean "all
/// hardware threads"; the result is clamped to [1, max_useful] so callers
/// never spawn more workers than there are independent work units.
inline int resolve_thread_count(int requested, int max_useful) {
  int threads = requested;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  return std::clamp(threads, 1, std::max(1, max_useful));
}

}  // namespace svtox
