// Small string utilities used by the parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace svtox {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Splits on runs of whitespace; no empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// ASCII upper-casing (locale-independent).
std::string to_upper(std::string_view s);

/// ASCII lower-casing (locale-independent).
std::string to_lower(std::string_view s);

/// Parses a non-negative integer; throws ContractError on malformed input.
std::size_t parse_size(std::string_view s);

/// Parses a double; throws ContractError on malformed input.
double parse_double(std::string_view s);

/// printf-style double formatting with fixed precision.
std::string format_double(double v, int precision);

}  // namespace svtox
