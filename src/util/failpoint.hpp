// Named fail points for fault-injection testing.
//
// A fail point is a named hook compiled into failure-prone paths (cache
// disk I/O, socket reads/writes, job execution, checkpoint writes). In
// instrumented builds a test -- or the SVTOX_FAILPOINTS environment
// variable -- arms points by name and the hook injects the configured
// fault: throw a retryable util::Error, or stall the caller. Release
// builds compile every hook to nothing (the SVTOX_FAILPOINTS macro is
// only defined by CMake outside Release), so shipping binaries carry
// zero overhead.
//
// Activation grammar (env var or FailPoints::configure):
//
//   SVTOX_FAILPOINTS="cache_write=error,socket_read=hang:250"
//
//   spec   := point (',' point)*
//   point  := name '=' action ['*' count] [':' param]
//   action := 'error' | 'hang' | 'off'
//           | 'drop' | 'delay' | 'truncate' | 'reset-after'
//
// `count` caps how many times the point fires (default: unlimited).
// For 'error' the param is a firing probability in [0, 1] (default 1;
// drawn from a fixed-seed deterministic stream). For 'hang' the param is
// the stall in milliseconds (default 100) -- a bounded stall, not a true
// hang, so injected tests cannot deadlock the suite.
//
// The last four are connection-scoped *network* actions, consumed only by
// hooks in src/net through SVTOX_NET_FAIL_POINT (net_fault()):
//
//   drop            kill the connection at this site (close / refuse)
//   delay:ms        sleep `ms` (default 100, capped at 60000) then proceed
//   truncate:n      transmit only the first `n` bytes (default 0) and drop
//   reset-after:n   after `n` bytes, hard-reset the socket (RST via
//                   SO_LINGER) so the peer sees ECONNRESET
//
// Non-network hooks ignore these actions; net hooks ignore error/hang.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace svtox {

/// One armed network action, as returned by FailPoints::net_fault(). kNone
/// means "nothing armed here -- proceed normally".
struct NetFault {
  enum class Kind { kNone, kDrop, kDelay, kTruncate, kReset };
  Kind kind = Kind::kNone;
  int param = 0;  ///< delay ms / truncate bytes / reset-after bytes.
};

class FailPoints {
 public:
  /// True when fail-point hooks are compiled into this build.
  static constexpr bool compiled_in() {
#if defined(SVTOX_FAILPOINTS) && SVTOX_FAILPOINTS
    return true;
#else
    return false;
#endif
  }

  /// Process-wide registry. First use reads the SVTOX_FAILPOINTS
  /// environment variable (if set) as the initial configuration.
  static FailPoints& instance();

  /// Replaces the whole configuration with `spec` (grammar above).
  /// Throws ContractError on a malformed spec or unknown action.
  void configure(const std::string& spec);

  /// Disarms every point and resets trigger counters.
  void clear();

  /// How many times `name` actually fired (threw or stalled) since the
  /// last configure()/clear().
  std::uint64_t triggers(const std::string& name) const;

  /// Hook body behind SVTOX_FAIL_POINT: throws Error(ErrorCode::kIo) for
  /// an armed 'error' action, stalls for 'hang', no-op otherwise.
  void evaluate(const char* name);

  /// Hook body behind SVTOX_FAIL_POINT_FAILS: like evaluate(), but an
  /// armed 'error' action returns true instead of throwing, so call
  /// sites whose native failure channel is a boolean (socket writes) can
  /// simulate their local failure mode. 'hang' stalls and returns false.
  bool fails(const char* name);

  /// Hook body behind SVTOX_NET_FAIL_POINT: returns the armed network
  /// action for `name` (kNone when unarmed, exhausted, or armed with a
  /// non-network action). A kDelay fault performs its stall here, then
  /// reports kDelay so call sites can account for it.
  NetFault net_fault(const char* name);

 private:
  enum class Action { kError, kHang, kOff, kDrop, kDelay, kTruncate, kReset };

  struct Point {
    Action action = Action::kOff;
    double probability = 1.0;     ///< 'error' only.
    int stall_ms = 100;           ///< 'hang'/'delay' only.
    int net_param = 0;            ///< 'truncate'/'reset-after' byte count.
    std::uint64_t max_fires = 0;  ///< 0 = unlimited.
    std::uint64_t fired = 0;
    std::uint64_t rng_state = 0;  ///< splitmix64 stream for `probability`.
  };

  FailPoints();
  /// Returns true when the 'error' action fired; throws nothing itself.
  bool roll(const char* name);

  /// Fast path: hooks bail out with one relaxed load while nothing is
  /// armed, so instrumented-but-idle builds stay cheap.
  std::atomic<std::size_t> armed_{0};
  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
};

/// RAII test helper: arms `spec` on construction, clears on destruction.
class FailPointScope {
 public:
  explicit FailPointScope(const std::string& spec) {
    FailPoints::instance().configure(spec);
  }
  ~FailPointScope() { FailPoints::instance().clear(); }
  FailPointScope(const FailPointScope&) = delete;
  FailPointScope& operator=(const FailPointScope&) = delete;
};

}  // namespace svtox

#if defined(SVTOX_FAILPOINTS) && SVTOX_FAILPOINTS
/// Throwing hook: injects Error(kIo) / a stall at this site when armed.
#define SVTOX_FAIL_POINT(name) ::svtox::FailPoints::instance().evaluate(name)
/// Boolean hook: true when an injected failure should be simulated here.
#define SVTOX_FAIL_POINT_FAILS(name) ::svtox::FailPoints::instance().fails(name)
/// Network hook: the armed NetFault for this site (kNone when idle).
#define SVTOX_NET_FAIL_POINT(name) ::svtox::FailPoints::instance().net_fault(name)
#else
#define SVTOX_FAIL_POINT(name) ((void)0)
#define SVTOX_FAIL_POINT_FAILS(name) (false)
#define SVTOX_NET_FAIL_POINT(name) (::svtox::NetFault{})
#endif
