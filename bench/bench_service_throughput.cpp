// Service-layer throughput: a 50-job mixed manifest (benchmark circuits
// x delay penalties, method heu1) pushed through svc::Scheduler, cold
// cache vs warm cache, 1 worker vs all hardware threads. Emits
// BENCH_service.json (jobs/sec, cache hit rates, warm-over-cold ratios)
// next to the other BENCH_*.json artifacts when run from the repo root.
//
// The warm pass resubmits the identical manifest to the same scheduler:
// every job must come back as a cache hit, so warm/cold jobs-per-second
// measures the solution cache's end-to-end payoff (target: >= 5x).
//
// Knobs: SVTOX_CIRCUITS / SVTOX_VECTORS / SVTOX_TIME_LIMIT (bench/common.hpp)
// shrink the manifest for smoke runs; argv[1] overrides the output path.
// A transport-latency appendix compares the two daemon front ends: the
// same `stats` round trip over the Unix socket (NDJSON) and over TCP
// loopback (length-prefixed frames), mean/median over a few hundred
// pings. This prices the framing + loopback-TCP overhead a --peers
// cluster pays per RPC.
#include <unistd.h>

#include <algorithm>
#include <thread>

#include "bench/common.hpp"
#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"

namespace {

using namespace svtox;

/// circuits x penalties, heu1. With the full 10-circuit suite and the
/// default 5 penalty points this is the 50-job manifest from the issue.
std::vector<svc::JobSpec> build_manifest() {
  const std::vector<double> penalties = {5.0, 10.0, 15.0, 20.0, 25.0};
  std::vector<svc::JobSpec> manifest;
  for (const std::string& name : bench::circuit_names()) {
    for (const double penalty : penalties) {
      svc::JobSpec spec;
      spec.circuit = name;
      spec.method = "heu1";
      spec.penalty_percent = penalty;
      spec.time_limit_s = bench::time_limit_s();
      spec.random_vectors = bench::mc_vectors();
      manifest.push_back(spec);
    }
  }
  return manifest;
}

struct PassResult {
  double seconds = 0.0;
  double jobs_per_s = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t executed = 0;
  double hit_rate = 0.0;
};

/// Submits the whole manifest, waits for every job, and reads the cache
/// counter deltas off the scheduler stats.
PassResult run_pass(svc::Scheduler& scheduler,
                    const std::vector<svc::JobSpec>& manifest) {
  const svc::SchedulerStats before = scheduler.stats();
  Timer timer;
  std::vector<svc::JobId> ids;
  ids.reserve(manifest.size());
  for (const svc::JobSpec& spec : manifest) ids.push_back(scheduler.submit(spec));
  for (const svc::JobId id : ids) {
    const svc::JobResult result = scheduler.wait(id);
    if (result.status != svc::JobStatus::kDone) {
      std::fprintf(stderr, "job %llu failed: %s\n",
                   static_cast<unsigned long long>(id), result.error.c_str());
      std::exit(1);
    }
  }
  PassResult pass;
  pass.seconds = timer.seconds();
  pass.jobs_per_s = static_cast<double>(manifest.size()) / pass.seconds;
  const svc::SchedulerStats after = scheduler.stats();
  pass.hits = after.cache.hits - before.cache.hits;
  pass.misses = after.cache.misses - before.cache.misses;
  pass.executed = after.executed - before.executed;
  const std::uint64_t lookups = pass.hits + pass.misses;
  pass.hit_rate = lookups == 0 ? 0.0
                               : static_cast<double>(pass.hits) /
                                     static_cast<double>(lookups);
  return pass;
}

struct LatencyResult {
  double mean_us = 0.0;
  double median_us = 0.0;
  double p99_us = 0.0;
};

/// Mean/median/p99 of `rounds` stats round trips through `client`.
LatencyResult measure_round_trips(svc::Client& client, int rounds) {
  std::vector<double> samples;
  samples.reserve(rounds);
  for (int i = 0; i < rounds; ++i) {
    Timer timer;
    client.stats();
    samples.push_back(timer.seconds() * 1e6);
  }
  std::sort(samples.begin(), samples.end());
  LatencyResult result;
  for (const double s : samples) result.mean_us += s;
  result.mean_us /= samples.size();
  result.median_us = samples[samples.size() / 2];
  result.p99_us = samples[samples.size() * 99 / 100];
  return result;
}

svc::Json latency_json(const LatencyResult& latency) {
  svc::Json json = svc::Json::object();
  json.set("mean_us", latency.mean_us);
  json.set("median_us", latency.median_us);
  json.set("p99_us", latency.p99_us);
  return json;
}

svc::Json pass_json(const PassResult& pass) {
  svc::Json json = svc::Json::object();
  json.set("seconds", pass.seconds);
  json.set("jobs_per_s", pass.jobs_per_s);
  json.set("cache_hits", pass.hits);
  json.set("cache_misses", pass.misses);
  json.set("executed", pass.executed);
  json.set("hit_rate", pass.hit_rate);
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svtox;
  bench::print_header("service throughput -- scheduler + solution cache",
                      "engineering artifact (no paper table)");

  // Always writes its artifact -> provenance guard up front.
  const char* out_path = argc > 1 ? argv[1] : "BENCH_service.json";
  bench::check_artifact_build_type(out_path);

  const std::vector<svc::JobSpec> manifest = build_manifest();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<int> worker_counts =
      hw > 1 ? std::vector<int>{1, static_cast<int>(hw)} : std::vector<int>{1};

  AsciiTable table;
  table.set_header({"workers", "phase", "time (s)", "jobs/s", "hit rate",
                    "executed"});

  svc::Json::Array runs;
  svc::Json ratios = svc::Json::object();
  for (const int workers : worker_counts) {
    svc::Scheduler::Options options;
    options.workers = workers;
    options.queue_capacity = manifest.size() + 8;
    svc::Scheduler scheduler(options);

    const PassResult cold = run_pass(scheduler, manifest);
    const PassResult warm = run_pass(scheduler, manifest);
    const double warm_over_cold = warm.jobs_per_s / cold.jobs_per_s;

    const auto record = [&](const char* phase, const PassResult& pass) {
      char time_s[32], rate[32], hit[32], exec[32];
      std::snprintf(time_s, sizeof time_s, "%.3f", pass.seconds);
      std::snprintf(rate, sizeof rate, "%.1f", pass.jobs_per_s);
      std::snprintf(hit, sizeof hit, "%.0f%%", pass.hit_rate * 100.0);
      std::snprintf(exec, sizeof exec, "%llu",
                    static_cast<unsigned long long>(pass.executed));
      table.add_row({std::to_string(workers), phase, time_s, rate, hit, exec});

      svc::Json run = pass_json(pass);
      run.set("workers", workers);
      run.set("phase", phase);
      runs.push_back(std::move(run));
    };
    record("cold", cold);
    record("warm", warm);
    ratios.set(std::to_string(workers), warm_over_cold);
    std::printf("workers=%d: warm/cold = %.1fx\n", workers, warm_over_cold);
  }
  std::printf("%s\n", table.render().c_str());

  // --- Transport latency: Unix NDJSON vs framed TCP loopback. -------------
  svc::Json transports = svc::Json::object();
  {
    svc::Scheduler::Options idle_options;
    idle_options.workers = 1;
    svc::Scheduler idle(idle_options);
    svc::ServerOptions server_options;
    server_options.socket_path =
        "/tmp/svtox_bench_lat_" + std::to_string(::getpid()) + ".sock";
    server_options.tcp_port = 0;
    svc::Server server(idle, server_options);
    server.start();

    const int rounds = 300;
    svc::Client unix_client(server_options.socket_path);
    const LatencyResult unix_latency = measure_round_trips(unix_client, rounds);
    svc::Client tcp_client("tcp://127.0.0.1:" +
                           std::to_string(server.tcp_port()));
    const LatencyResult tcp_latency = measure_round_trips(tcp_client, rounds);

    std::printf("stats round trip (%d rounds): unix %.0f us median, "
                "tcp %.0f us median (%.2fx)\n",
                rounds, unix_latency.median_us, tcp_latency.median_us,
                tcp_latency.median_us / unix_latency.median_us);
    transports.set("rounds", static_cast<double>(rounds));
    transports.set("unix", latency_json(unix_latency));
    transports.set("tcp", latency_json(tcp_latency));
    transports.set("tcp_over_unix_median_x",
                   tcp_latency.median_us / unix_latency.median_us);

    server.stop();
    idle.shutdown(false);
  }

  svc::Json doc = svc::Json::object();
  doc.set("bench", "service_throughput");
  doc.set("jobs", static_cast<double>(manifest.size()));
  doc.set("method", "heu1");
  doc.set("vectors", bench::mc_vectors());
  doc.set("time_limit_s", bench::time_limit_s());
  svc::Json::Array circuits;
  for (const std::string& name : bench::circuit_names()) circuits.emplace_back(name);
  doc.set("circuits", svc::Json(std::move(circuits)));
  doc.set("hardware_threads", static_cast<double>(hw));
  doc.set("runs", svc::Json(std::move(runs)));
  doc.set("warm_over_cold_x", ratios);
  doc.set("transport_round_trip", transports);

  doc.set("svtox_build_type", bench::build_type());

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  const std::string text = doc.dump();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return 0;
}
