// Google-benchmark microbenchmarks of the engine kernels (not a paper
// table; engineering due diligence for the hot paths the heuristics lean
// on: bit-parallel simulation, NLDM interpolation, incremental STA, and
// the ternary bound).
#include <benchmark/benchmark.h>

#include "liberty/library.hpp"
#include "model/tech.hpp"
#include "netlist/generators.hpp"
#include "opt/state_search.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/sim.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"

namespace {

using namespace svtox;

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

const netlist::Netlist& circuit() {
  static const netlist::Netlist n =
      netlist::random_circuit(lib(), "micro", 64, 1000, 7);
  return n;
}

void BM_Simulate64(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(circuit().num_inputs()));
  for (auto& w : words) w = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate64(circuit(), words));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Simulate64);

void BM_ScalarSimulate(benchmark::State& state) {
  Rng rng(2);
  std::vector<bool> in(static_cast<std::size_t>(circuit().num_inputs()));
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(circuit(), in));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalarSimulate);

void BM_MonteCarlo1k(benchmark::State& state) {
  const sim::CircuitConfig config = sim::fastest_config(circuit());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::monte_carlo_leakage(circuit(), config, 1024, 3));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MonteCarlo1k);

void BM_NldmLookup(benchmark::State& state) {
  const auto& cell = lib().cell("NAND2");
  const auto& table = cell.variant(0).pins[0].delay_rise;
  double slew = 7.0;
  for (auto _ : state) {
    slew = slew < 200.0 ? slew * 1.1 : 7.0;
    benchmark::DoNotOptimize(table.lookup(slew, 5.0));
  }
}
BENCHMARK(BM_NldmLookup);

void BM_FullSta(benchmark::State& state) {
  const sim::CircuitConfig config = sim::fastest_config(circuit());
  sta::TimingState timing(circuit());
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing.analyze(config));
  }
}
BENCHMARK(BM_FullSta);

void BM_IncrementalSta(benchmark::State& state) {
  sim::CircuitConfig config = sim::fastest_config(circuit());
  sta::TimingState timing(circuit());
  timing.analyze(config);
  Rng rng(4);
  for (auto _ : state) {
    const int g =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(circuit().num_gates())));
    const int v = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(circuit().cell_of(g).num_variants())));
    config[static_cast<std::size_t>(g)].variant = v;
    sta::TimingUndo undo;
    benchmark::DoNotOptimize(timing.update_after_gate_change(config, g, &undo));
    timing.revert(undo);
    config[static_cast<std::size_t>(g)].variant = circuit().cell_of(g).fastest_variant();
  }
}
BENCHMARK(BM_IncrementalSta);

void BM_TernaryBound(benchmark::State& state) {
  const opt::AssignmentProblem problem(circuit(), 0.05);
  std::vector<sim::Tri> partial(static_cast<std::size_t>(circuit().num_inputs()),
                                sim::Tri::kX);
  for (std::size_t i = 0; i < partial.size() / 2; ++i) partial[i] = sim::Tri::kOne;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::leakage_lower_bound_na(problem, partial, opt::BoundKind::kMinVariant));
  }
}
BENCHMARK(BM_TernaryBound);

void BM_GreedyGateAssign(benchmark::State& state) {
  const opt::AssignmentProblem problem(circuit(), 0.05);
  Rng rng(5);
  std::vector<bool> vec(static_cast<std::size_t>(circuit().num_inputs()));
  for (std::size_t i = 0; i < vec.size(); ++i) vec[i] = rng.next_bool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::assign_gates_greedy(problem, vec));
  }
}
BENCHMARK(BM_GreedyGateAssign);

void BM_LibraryBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        liberty::Library::build(model::TechParams::nominal(), {}));
  }
}
BENCHMARK(BM_LibraryBuild);

}  // namespace

BENCHMARK_MAIN();
