// Google-benchmark microbenchmarks of the engine kernels (not a paper
// table; engineering due diligence for the hot paths the heuristics lean
// on: bit-parallel simulation, NLDM interpolation, incremental STA, and
// the ternary bound).
#include <benchmark/benchmark.h>

#include <cstring>

#include "bench/common.hpp"
#include "liberty/library.hpp"
#include "model/tech.hpp"
#include "netlist/benchmarks.hpp"
#include "netlist/generators.hpp"
#include "opt/bound_engine.hpp"
#include "opt/leaf_evaluator.hpp"
#include "opt/state_search.hpp"
#include "sim/incremental.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/packed.hpp"
#include "sim/sim.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace svtox;

const liberty::Library& lib() {
  static const liberty::Library library =
      liberty::Library::build(model::TechParams::nominal(), {});
  return library;
}

const netlist::Netlist& circuit() {
  static const netlist::Netlist n =
      netlist::random_circuit(lib(), "micro", 64, 1000, 7);
  return n;
}

void BM_Simulate64(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(circuit().num_inputs()));
  for (auto& w : words) w = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate64(circuit(), words));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Simulate64);

void BM_ScalarSimulate(benchmark::State& state) {
  Rng rng(2);
  std::vector<bool> in(static_cast<std::size_t>(circuit().num_inputs()));
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.next_bool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(circuit(), in));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScalarSimulate);

void BM_MonteCarlo1k(benchmark::State& state) {
  const sim::CircuitConfig config = sim::fastest_config(circuit());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::monte_carlo_leakage(circuit(), config, 1024, 3));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MonteCarlo1k);

// ---------------------------------------------------------------------------
// Packed (64-wide bit-plane) simulation kernels (BENCH_sim_kernels.json is
// the curated artifact; these are the raw google-benchmark counterparts).
// Scalar and packed Monte-Carlo return bit-identical results, so the pair
// is a pure same-work speed comparison.

void BM_PackedBoolSim64(benchmark::State& state) {
  Rng rng(1);
  sim::PackedBoolSim packed(circuit());
  std::vector<std::uint64_t> words(static_cast<std::size_t>(circuit().num_inputs()));
  for (auto& w : words) w = rng.next_u64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(packed.run(words));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PackedBoolSim64);

void BM_MonteCarloScalar1k(benchmark::State& state) {
  const sim::CircuitConfig config = sim::fastest_config(circuit());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::monte_carlo_leakage(circuit(), config, 1024, 3,
                                                      sim::SimBackend::kScalar));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MonteCarloScalar1k);

void BM_MonteCarloPacked1k(benchmark::State& state) {
  const sim::CircuitConfig config = sim::fastest_config(circuit());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::monte_carlo_leakage(circuit(), config, 1024, 3,
                                                      sim::SimBackend::kPacked));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MonteCarloPacked1k);

void BM_NldmLookup(benchmark::State& state) {
  const auto& cell = lib().cell("NAND2");
  const auto& table = cell.variant(0).pins[0].delay_rise;
  double slew = 7.0;
  for (auto _ : state) {
    slew = slew < 200.0 ? slew * 1.1 : 7.0;
    benchmark::DoNotOptimize(table.lookup(slew, 5.0));
  }
}
BENCHMARK(BM_NldmLookup);

void BM_FullSta(benchmark::State& state) {
  const sim::CircuitConfig config = sim::fastest_config(circuit());
  sta::TimingState timing(circuit());
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing.analyze(config));
  }
}
BENCHMARK(BM_FullSta);

void BM_IncrementalSta(benchmark::State& state) {
  sim::CircuitConfig config = sim::fastest_config(circuit());
  sta::TimingState timing(circuit());
  timing.analyze(config);
  Rng rng(4);
  for (auto _ : state) {
    const int g =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(circuit().num_gates())));
    const int v = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(circuit().cell_of(g).num_variants())));
    config[static_cast<std::size_t>(g)].variant = v;
    sta::TimingUndo undo;
    benchmark::DoNotOptimize(timing.update_after_gate_change(config, g, &undo));
    timing.revert(undo);
    config[static_cast<std::size_t>(g)].variant = circuit().cell_of(g).fastest_variant();
  }
}
BENCHMARK(BM_IncrementalSta);

void BM_TernaryBound(benchmark::State& state) {
  const opt::AssignmentProblem problem(circuit(), 0.05);
  std::vector<sim::Tri> partial(static_cast<std::size_t>(circuit().num_inputs()),
                                sim::Tri::kX);
  for (std::size_t i = 0; i < partial.size() / 2; ++i) partial[i] = sim::Tri::kOne;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::leakage_lower_bound_na(problem, partial, opt::BoundKind::kMinVariant));
  }
}
BENCHMARK(BM_TernaryBound);

void BM_GreedyGateAssign(benchmark::State& state) {
  const opt::AssignmentProblem problem(circuit(), 0.05);
  Rng rng(5);
  std::vector<bool> vec(static_cast<std::size_t>(circuit().num_inputs()));
  for (std::size_t i = 0; i < vec.size(); ++i) vec[i] = rng.next_bool();
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::assign_gates_greedy(problem, vec));
  }
}
BENCHMARK(BM_GreedyGateAssign);

// ---------------------------------------------------------------------------
// Bound-engine benchmarks (BENCH_bound_engine.json).
//
// `probe descent` is the branch-and-bound inner loop: at each depth probe
// both polarities of the next input (set, read bound, undo) and commit the
// better-looking branch. BM_BoundEngineIncremental runs it on the
// event-driven engine (cone resimulation + cached per-gate terms);
// BM_BoundEngineReference runs the same sequence with every bound
// recomputed from scratch, which is what the search did before this
// engine existed. Both use c6288 (16x16 array multiplier, 2470 gates),
// the largest bundled netlist.

const netlist::Netlist& c6288() {
  static const netlist::Netlist n = netlist::make_benchmark("c6288", lib());
  return n;
}

const opt::AssignmentProblem& c6288_problem() {
  static const opt::AssignmentProblem p(c6288(), 0.05);
  return p;
}

double probe_descent(opt::BoundEngine& engine, int depth) {
  double acc = 0.0;
  for (int d = 0; d < depth; ++d) {
    const double zero = engine.set_input(d, sim::Tri::kZero);
    engine.undo();
    const double one = engine.set_input(d, sim::Tri::kOne);
    engine.undo();
    acc += engine.set_input(d, zero <= one ? sim::Tri::kZero : sim::Tri::kOne);
  }
  for (int d = 0; d < depth; ++d) engine.undo();
  return acc;
}

void BM_BoundEngineIncremental(benchmark::State& state) {
  opt::BoundEngine engine(c6288_problem(), opt::BoundKind::kMinVariant,
                          opt::BoundMode::kIncremental);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(probe_descent(engine, depth));
  }
  // Three bound evaluations per depth level.
  state.SetItemsProcessed(state.iterations() * depth * 3);
}
BENCHMARK(BM_BoundEngineIncremental)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_BoundEngineReference(benchmark::State& state) {
  opt::BoundEngine engine(c6288_problem(), opt::BoundKind::kMinVariant,
                          opt::BoundMode::kReference);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(probe_descent(engine, depth));
  }
  state.SetItemsProcessed(state.iterations() * depth * 3);
}
BENCHMARK(BM_BoundEngineReference)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_IncrementalTernaryUpdate(benchmark::State& state) {
  sim::IncrementalTernarySim inc(c6288());
  Rng rng(6);
  for (auto _ : state) {
    const int index =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(c6288().num_inputs())));
    inc.set_input(index, rng.next_bool() ? sim::Tri::kOne : sim::Tri::kZero);
    inc.undo();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalTernaryUpdate);

void BM_FullTernarySim(benchmark::State& state) {
  Rng rng(6);
  std::vector<sim::Tri> inputs(static_cast<std::size_t>(c6288().num_inputs()),
                               sim::Tri::kX);
  for (auto _ : state) {
    const auto index = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(c6288().num_inputs())));
    inputs[index] = rng.next_bool() ? sim::Tri::kOne : sim::Tri::kZero;
    benchmark::DoNotOptimize(sim::simulate_ternary(c6288(), inputs));
    inputs[index] = sim::Tri::kX;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullTernarySim);

// Root-split scaling: a fixed-work full-tree search at 1/2/4/8 worker
// threads. XOR trees keep ternary bounds flat, so nothing prunes and the
// search visits all 2^11 leaves with greedy gate assignment at each --
// identical work at every thread count (verified: leaves == 2^inputs).
// Results depend on the host's core count (recorded as `num_cpus` in the
// benchmark JSON context); on a single-CPU host the threads timeslice and
// the curve is necessarily flat.
const opt::AssignmentProblem& parity_problem() {
  static const netlist::Netlist n = netlist::parity_checker(lib(), 8, 2);
  static const opt::AssignmentProblem p(n, 0.05);
  return p;
}

void BM_RootSplitFullTree(benchmark::State& state) {
  opt::SearchOptions options;
  options.time_limit_s = 1e9;  // run to tree exhaustion, not to a deadline
  options.threads = static_cast<int>(state.range(0));
  std::int64_t leaves = 0;
  for (auto _ : state) {
    const opt::Solution sol = opt::heuristic2(parity_problem(), options);
    leaves = sol.states_explored;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["leaves"] =
      benchmark::Counter(static_cast<double>(leaves));
  state.SetItemsProcessed(state.iterations() * leaves);
}
BENCHMARK(BM_RootSplitFullTree)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Leaf-evaluation benchmarks (BENCH_leaf_eval.json).
//
// One iteration = one greedy gate-tree leaf. The walk flips a single
// random input between leaves -- the access pattern of the state-tree
// DFS and the probe sweep, where consecutive leaves share most of their
// sleep vector. BM_LeafGreedyAmortized evaluates through a persistent
// LeafEvaluator (cone-local resimulation, memoized canonicalization,
// snapshot-restored timing baseline); BM_LeafGreedyFromScratch calls the
// free function, which rebuilds all of that per leaf -- what every leaf
// cost before the evaluator existed. Run on the two largest bundled
// netlists: c6288 (2470 gates) and c7552 (1994 gates).

const netlist::Netlist& c7552() {
  static const netlist::Netlist n = netlist::make_benchmark("c7552", lib());
  return n;
}

const opt::AssignmentProblem& c7552_problem() {
  static const opt::AssignmentProblem p(c7552(), 0.05);
  return p;
}

void leaf_walk_amortized(benchmark::State& state, const opt::AssignmentProblem& problem) {
  opt::LeafEvaluator evaluator(problem);
  Rng rng(8);
  std::vector<bool> vec(
      static_cast<std::size_t>(problem.netlist().num_control_points()), false);
  for (auto _ : state) {
    const auto i = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(vec.size())));
    vec[i] = !vec[i];
    benchmark::DoNotOptimize(evaluator.evaluate_greedy(vec));
  }
  state.SetItemsProcessed(state.iterations());
}

void leaf_walk_from_scratch(benchmark::State& state,
                            const opt::AssignmentProblem& problem) {
  Rng rng(8);
  std::vector<bool> vec(
      static_cast<std::size_t>(problem.netlist().num_control_points()), false);
  for (auto _ : state) {
    const auto i = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(vec.size())));
    vec[i] = !vec[i];
    benchmark::DoNotOptimize(opt::assign_gates_greedy(problem, vec));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LeafGreedyAmortized_c6288(benchmark::State& state) {
  leaf_walk_amortized(state, c6288_problem());
}
BENCHMARK(BM_LeafGreedyAmortized_c6288)->Unit(benchmark::kMillisecond);

void BM_LeafGreedyFromScratch_c6288(benchmark::State& state) {
  leaf_walk_from_scratch(state, c6288_problem());
}
BENCHMARK(BM_LeafGreedyFromScratch_c6288)->Unit(benchmark::kMillisecond);

void BM_LeafGreedyAmortized_c7552(benchmark::State& state) {
  leaf_walk_amortized(state, c7552_problem());
}
BENCHMARK(BM_LeafGreedyAmortized_c7552)->Unit(benchmark::kMillisecond);

void BM_LeafGreedyFromScratch_c7552(benchmark::State& state) {
  leaf_walk_from_scratch(state, c7552_problem());
}
BENCHMARK(BM_LeafGreedyFromScratch_c7552)->Unit(benchmark::kMillisecond);

void BM_LibraryBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        liberty::Library::build(model::TechParams::nominal(), {}));
  }
}
BENCHMARK(BM_LibraryBuild);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): records this binary's own build
// type and the dispatched SIMD implementation in the JSON context (the
// stock `library_build_type` field describes the system benchmark library,
// not us -- that ambiguity put a debug capture in BENCH_leaf_eval.json
// once), and refuses to write a --benchmark_out artifact from a
// non-Release build (bench::check_artifact_build_type).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      svtox::bench::check_artifact_build_type(argv[i] + 16);
    }
  }
  benchmark::AddCustomContext("svtox_build_type", svtox::bench::build_type());
  benchmark::AddCustomContext("simd_dispatch", svtox::simd::dispatch_name());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
