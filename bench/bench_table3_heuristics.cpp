// Reproduces Table 3: Heuristic 1 vs Heuristic 2 leakage (uA) and reduction
// factors vs the 10K-random-vector average, at 5/10/25% delay penalties.
#include "bench/common.hpp"

int main() {
  using namespace svtox;
  bench::print_header("Table 3 -- Heu1 vs Heu2 with the 4-option library",
                      "Lee et al., DATE 2004, Table 3");

  const auto& tech = model::TechParams::nominal();
  const auto library = liberty::Library::build(tech, {});

  AsciiTable table;
  table.set_header({"circuit", "avg 10K (paper/ours uA)",
                    "h1@5% (p/o uA)", "h1@5% X (p/o)", "h2@5% (p/o uA)",
                    "h1@10% (p/o uA)", "h1@25% (p/o uA)", "h1 time", "h2 time"});

  double sum_x5 = 0.0, sum_x5_paper = 0.0;
  double sum_x10 = 0.0, sum_x25 = 0.0;
  int rows = 0;

  for (const std::string& name : bench::circuit_names()) {
    const auto& spec = netlist::benchmark_spec(name);
    const auto circuit = netlist::make_benchmark(name, library);
    core::StandbyOptimizer optimizer(circuit);

    const auto avg = optimizer.run(core::Method::kAverageRandom, bench::run_config(0.05));
    const auto h1_5 = optimizer.run(core::Method::kHeu1, bench::run_config(0.05));
    const auto h2_5 = optimizer.run(core::Method::kHeu2, bench::run_config(0.05));
    const auto h1_10 = optimizer.run(core::Method::kHeu1, bench::run_config(0.10));
    const auto h1_25 = optimizer.run(core::Method::kHeu1, bench::run_config(0.25));

    table.add_row({name,
                   report::paper_vs_measured(spec.paper.avg_random_ua, avg.leakage_ua),
                   report::paper_vs_measured(spec.paper.heu1_5_ua, h1_5.leakage_ua),
                   report::paper_vs_measured(spec.paper.avg_random_ua / spec.paper.heu1_5_ua,
                                             h1_5.reduction_x),
                   report::paper_vs_measured(spec.paper.heu2_5_ua, h2_5.leakage_ua),
                   report::paper_vs_measured(spec.paper.heu1_10_ua, h1_10.leakage_ua),
                   report::paper_vs_measured(spec.paper.heu1_25_ua, h1_25.leakage_ua),
                   report::format_seconds(h1_5.runtime_s),
                   report::format_seconds(h2_5.runtime_s)});
    sum_x5 += h1_5.reduction_x;
    sum_x5_paper += spec.paper.avg_random_ua / spec.paper.heu1_5_ua;
    sum_x10 += h1_10.reduction_x;
    sum_x25 += h1_25.reduction_x;
    ++rows;
  }
  if (rows > 0) {
    table.add_separator();
    table.add_row({"AVG X", "",
                   "", report::paper_vs_measured(sum_x5_paper / rows, sum_x5 / rows), "",
                   "avg X@10%: " + report::format_x(sum_x10 / rows) + " (paper 6.3)",
                   "avg X@25%: " + report::format_x(sum_x25 / rows) + " (paper 9.1)",
                   "", ""});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: heu2 time limit here is %.1fs (the paper used 1800s on 2004\n"
              "hardware); absolute runtimes are not comparable, shapes are.\n",
              bench::time_limit_s());
  return 0;
}
