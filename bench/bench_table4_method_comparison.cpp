// Reproduces Table 4: the proposed method (Heu1) against state assignment
// alone and simultaneous Vt+state assignment [12], at 5/10/25% penalties.
#include "bench/common.hpp"

int main() {
  using namespace svtox;
  bench::print_header(
      "Table 4 -- proposed method vs state-only and Vt+state baselines",
      "Lee et al., DATE 2004, Table 4");

  const auto& tech = model::TechParams::nominal();
  const auto library = liberty::Library::build(tech, {});

  AsciiTable table;
  table.set_header({"circuit", "inputs", "gates", "avg (p/o uA)",
                    "state-only X (p/o)", "vt+state@5% X (p/o)", "heu1@5% X (p/o)",
                    "vt+state@25% X (p/o)", "heu1@25% X (p/o)"});

  struct Avg {
    double state = 0, vt5 = 0, h15 = 0, vt25 = 0, h125 = 0;
    double pstate = 0, pvt5 = 0, ph15 = 0, pvt25 = 0, ph125 = 0;
    int n = 0;
  } acc;

  for (const std::string& name : bench::circuit_names()) {
    const auto& spec = netlist::benchmark_spec(name);
    const auto circuit = netlist::make_benchmark(name, library);
    core::StandbyOptimizer optimizer(circuit);

    const auto avg = optimizer.run(core::Method::kAverageRandom, bench::run_config(0.05));
    const auto state = optimizer.run(core::Method::kStateOnly, bench::run_config(0.05));
    const auto vt5 = optimizer.run(core::Method::kVtState, bench::run_config(0.05));
    const auto h15 = optimizer.run(core::Method::kHeu1, bench::run_config(0.05));
    const auto vt25 = optimizer.run(core::Method::kVtState, bench::run_config(0.25));
    const auto h125 = optimizer.run(core::Method::kHeu1, bench::run_config(0.25));

    const double p_avg = spec.paper.avg_random_ua;
    table.add_row(
        {name, std::to_string(circuit.num_inputs()), std::to_string(circuit.num_gates()),
         report::paper_vs_measured(p_avg, avg.leakage_ua),
         report::paper_vs_measured(p_avg / spec.paper.state_only_ua, state.reduction_x, 2),
         report::paper_vs_measured(p_avg / spec.paper.vt_state_5_ua, vt5.reduction_x),
         report::paper_vs_measured(p_avg / spec.paper.heu1_5_ua, h15.reduction_x),
         report::paper_vs_measured(p_avg / spec.paper.vt_state_25_ua, vt25.reduction_x),
         report::paper_vs_measured(p_avg / spec.paper.heu1_25_ua, h125.reduction_x)});

    acc.state += state.reduction_x;
    acc.vt5 += vt5.reduction_x;
    acc.h15 += h15.reduction_x;
    acc.vt25 += vt25.reduction_x;
    acc.h125 += h125.reduction_x;
    acc.pstate += p_avg / spec.paper.state_only_ua;
    acc.pvt5 += p_avg / spec.paper.vt_state_5_ua;
    acc.ph15 += p_avg / spec.paper.heu1_5_ua;
    acc.pvt25 += p_avg / spec.paper.vt_state_25_ua;
    acc.ph125 += p_avg / spec.paper.heu1_25_ua;
    ++acc.n;
  }
  if (acc.n > 0) {
    table.add_separator();
    const double n = acc.n;
    table.add_row({"AVG", "", "", "",
                   report::paper_vs_measured(acc.pstate / n, acc.state / n, 2),
                   report::paper_vs_measured(acc.pvt5 / n, acc.vt5 / n),
                   report::paper_vs_measured(acc.ph15 / n, acc.h15 / n),
                   report::paper_vs_measured(acc.pvt25 / n, acc.vt25 / n),
                   report::paper_vs_measured(acc.ph125 / n, acc.h125 / n)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper headline: state-only ~1.06X; vt+state 2.5X@5%% / 3.1X@25%%;\n"
              "proposed 5.3X@5%% / 9.1X@25%% -- i.e. >2X beyond vt+state.\n");
  return 0;
}
