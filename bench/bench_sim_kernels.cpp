// Word-parallel (64-wide) simulation kernel benchmark: the curated
// BENCH_sim_kernels.json artifact behind the README performance table.
//
// Three same-work Monte-Carlo leakage implementations on c6288 (16x16
// array multiplier, the largest bundled netlist):
//
//   scalar -- one vector at a time through sim::simulate (the reference
//             backend, sim::SimBackend::kScalar);
//   hybrid -- word-parallel sim::simulate64 followed by per-lane scalar
//             state extraction + accumulation (what the code did before
//             the packed subsystem existed);
//   packed -- sim::PackedBoolSim bit-plane simulation with the fused
//             simd::select_add accumulation (sim::SimBackend::kPacked).
//
// All three consume the same Rng word stream and perform the identical
// per-lane FP addition sequence, so their mean/min/max must be
// bit-identical -- the bench asserts this, making the speedups a pure
// same-work comparison. A fourth section runs the state-only random-probe
// sweep (the rewired opt consumer) scalar vs packed, and a fifth records
// thread scaling of the packed parallel Monte-Carlo at 1/2/4/8 threads.
// On a single-CPU host the scaling curve is necessarily flat -- that is
// the honest datum, not a bug; `hardware_threads` in the context says
// which regime the numbers were captured in.
//
// Knobs: SVTOX_VECTORS (default 10000), SVTOX_PROBES (default 512);
// argv[1] overrides the output path. Non-Release builds refuse to write
// the artifact unless SVTOX_ALLOW_DEBUG_BENCH=1 (bench/common.hpp).
#include <thread>

#include "bench/common.hpp"
#include "opt/problem.hpp"
#include "opt/state_search.hpp"
#include "sim/leakage_eval.hpp"
#include "sim/packed.hpp"
#include "sim/sim.hpp"
#include "svc/json.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace svtox;

/// The pre-packed word-parallel implementation: simulate64 for the values,
/// then per-lane scalar accumulation through the public leakage API. Same
/// Rng stream and per-lane gate-order additions as both backends.
sim::MonteCarloResult hybrid_monte_carlo(const netlist::Netlist& netlist,
                                         const sim::CircuitConfig& config,
                                         int num_vectors, std::uint64_t seed) {
  Rng rng(seed);
  sim::MonteCarloResult result;
  result.vectors = num_vectors;
  result.min_na = 1e300;
  result.max_na = -1e300;
  double sum = 0.0;
  std::vector<std::uint64_t> pi_words(
      static_cast<std::size_t>(netlist.num_control_points()));
  std::vector<bool> values(static_cast<std::size_t>(netlist.num_signals()));
  int remaining = num_vectors;
  while (remaining > 0) {
    const int lanes = std::min(remaining, 64);
    for (auto& word : pi_words) word = rng.next_u64();
    const std::vector<std::uint64_t> words = sim::simulate64(netlist, pi_words);
    for (int lane = 0; lane < lanes; ++lane) {
      for (std::size_t s = 0; s < values.size(); ++s) {
        values[s] = ((words[s] >> lane) & 1u) != 0;
      }
      const double total =
          sim::circuit_leakage_from_values_na(netlist, config, values);
      sum += total;
      result.min_na = std::min(result.min_na, total);
      result.max_na = std::max(result.max_na, total);
    }
    remaining -= lanes;
  }
  result.mean_na = sum / num_vectors;
  return result;
}

bool same_result(const sim::MonteCarloResult& a, const sim::MonteCarloResult& b) {
  return a.mean_na == b.mean_na && a.min_na == b.min_na && a.max_na == b.max_na;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svtox;
  bench::print_header("word-parallel simulation kernels",
                      "engineering artifact (no paper table)");

  // This bench always writes its artifact, so the provenance guard runs
  // up front rather than after minutes of measurement.
  const char* out_path = argc > 1 ? argv[1] : "BENCH_sim_kernels.json";
  bench::check_artifact_build_type(out_path);

  const auto library = liberty::Library::build(model::TechParams::nominal(), {});
  const netlist::Netlist netlist = netlist::make_benchmark("c6288", library);
  const sim::CircuitConfig config = sim::fastest_config(netlist);
  const int vectors = bench::mc_vectors();
  const std::uint64_t seed = 42;

  svc::Json doc = svc::Json::object();
  doc.set("bench", "sim_kernels");
  svc::Json context = svc::Json::object();
  context.set("svtox_build_type", bench::build_type());
  context.set("simd_dispatch", simd::dispatch_name());
  context.set("hardware_threads",
              static_cast<int>(std::thread::hardware_concurrency()));
  doc.set("context", context);

  // --- Monte-Carlo backends, same work, bit-identical results ----------
  Timer timer;
  const sim::MonteCarloResult scalar = sim::monte_carlo_leakage(
      netlist, config, vectors, seed, sim::SimBackend::kScalar);
  const double scalar_s = timer.seconds();

  timer.reset();
  const sim::MonteCarloResult hybrid =
      hybrid_monte_carlo(netlist, config, vectors, seed);
  const double hybrid_s = timer.seconds();

  timer.reset();
  const sim::MonteCarloResult packed = sim::monte_carlo_leakage(
      netlist, config, vectors, seed, sim::SimBackend::kPacked);
  const double packed_s = timer.seconds();

  const bool identical = same_result(scalar, packed) && same_result(scalar, hybrid);
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: backends disagree (scalar %.17g hybrid %.17g packed "
                 "%.17g) -- the speedup numbers would be meaningless\n",
                 scalar.mean_na, hybrid.mean_na, packed.mean_na);
    return 1;
  }

  std::printf("monte_carlo_leakage c6288, %d vectors (mean %.3f nA):\n",
              vectors, packed.mean_na);
  std::printf("  scalar  %.4fs\n", scalar_s);
  std::printf("  hybrid  %.4fs  (%.1fx)\n", hybrid_s, scalar_s / hybrid_s);
  std::printf("  packed  %.4fs  (%.1fx)\n\n", packed_s, scalar_s / packed_s);

  svc::Json mc = svc::Json::object();
  mc.set("circuit", "c6288");
  mc.set("vectors", vectors);
  mc.set("mean_na", packed.mean_na);
  mc.set("scalar_s", scalar_s);
  mc.set("hybrid_s", hybrid_s);
  mc.set("packed_s", packed_s);
  mc.set("hybrid_speedup_x", scalar_s / hybrid_s);
  mc.set("packed_speedup_x", scalar_s / packed_s);
  mc.set("bit_identical", identical);
  doc.set("monte_carlo", mc);

  // --- State-only probe sweep, scalar vs packed backend ----------------
  const opt::AssignmentProblem problem(netlist, 0.05);
  opt::SearchOptions sweep;
  sweep.time_limit_s = 1e9;  // drain the whole probe set
  sweep.max_leaves = 1;      // probes only; no continued tree search
  sweep.random_probes = bench::env_int("SVTOX_PROBES", 512);
  sweep.threads = 1;

  sweep.sim_backend = sim::SimBackend::kScalar;
  timer.reset();
  const opt::Solution sweep_scalar = opt::state_only_search(problem, sweep);
  const double sweep_scalar_s = timer.seconds();

  sweep.sim_backend = sim::SimBackend::kPacked;
  timer.reset();
  const opt::Solution sweep_packed = opt::state_only_search(problem, sweep);
  const double sweep_packed_s = timer.seconds();

  if (sweep_scalar.leakage_na != sweep_packed.leakage_na) {
    std::fprintf(stderr, "FATAL: probe sweep backends disagree (%.17g vs %.17g)\n",
                 sweep_scalar.leakage_na, sweep_packed.leakage_na);
    return 1;
  }
  std::printf("state-only probe sweep c6288, %d probes:\n", sweep.random_probes);
  std::printf("  scalar  %.4fs\n", sweep_scalar_s);
  std::printf("  packed  %.4fs  (%.1fx)\n\n", sweep_packed_s,
              sweep_scalar_s / sweep_packed_s);

  svc::Json probes = svc::Json::object();
  probes.set("circuit", "c6288");
  probes.set("probes", sweep.random_probes);
  probes.set("scalar_s", sweep_scalar_s);
  probes.set("packed_s", sweep_packed_s);
  probes.set("speedup_x", sweep_scalar_s / sweep_packed_s);
  probes.set("same_result", true);
  doc.set("probe_sweep", probes);

  // --- Thread scaling of the packed parallel Monte-Carlo ---------------
  // Per-chunk seeds make the estimate thread-count-invariant, so every row
  // does identical work. Expect ~linear gains up to hardware_threads and a
  // flat line beyond (or everywhere, on a 1-CPU host).
  const int scaling_vectors = vectors * 4;
  svc::Json::Array scaling;
  double one_thread_s = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    timer.reset();
    const sim::MonteCarloResult r = sim::monte_carlo_leakage_parallel(
        netlist, config, scaling_vectors, seed, threads, sim::SimBackend::kPacked);
    const double seconds = timer.seconds();
    if (threads == 1) one_thread_s = seconds;
    std::printf("parallel packed MC, %d vectors, %d thread(s): %.4fs (%.2fx)\n",
                scaling_vectors, threads, seconds, one_thread_s / seconds);
    svc::Json row = svc::Json::object();
    row.set("threads", threads);
    row.set("seconds", seconds);
    row.set("speedup_x", one_thread_s / seconds);
    row.set("mean_na", r.mean_na);
    scaling.push_back(std::move(row));
  }
  doc.set("scaling", svc::Json(std::move(scaling)));
  doc.set("scaling_vectors", scaling_vectors);
  doc.set("svtox_build_type", bench::build_type());

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  const std::string text = doc.dump();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}
