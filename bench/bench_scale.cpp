// Scale benchmark: the BENCH_scale.json artifact behind the README scale
// table (flat SoA netlist core + hierarchical partitioned optimization).
//
// Four sections:
//
//   kernels   -- flat-vs-pointer gates/sec for three same-work simulation
//                kernels (full scalar sweep, 64-wide word-parallel sweep,
//                event-driven single-bit flips) on c6288 and the largest
//                generated circuit in the run. The "pointer" side is the
//                pre-refactor implementation embedded below verbatim in
//                algorithm (Gate-struct walks through the pointer API);
//                the "flat" side is the shipped SoA code path. Both sides
//                consume identical inputs and must produce bit-identical
//                values -- the bench exits 1 otherwise, so the speedups
//                are pure data-layout comparisons.
//   memory    -- peak RSS (getrusage ru_maxrss) sampled after each build
//                stage, so the artifact records what the 100k..1M-gate
//                netlists actually cost to hold.
//   hier      -- hierarchical Heu1 end-to-end wall-clock on the generated
//                scale presets (default dag10k,dag100k; add dag500k and
//                up with SVTOX_SCALE_PRESETS), with partition count,
//                cone-cache stats and the verified global delay margin.
//   gap       -- hierarchical vs flat Heu1 leakage on c6288, the largest
//                circuit where the flat reference is cheap. The gap is
//                the honest price of the boundary-state relaxation (cone
//                optimizers assume controllable boundaries); it is
//                published, not hidden.
//
// Knobs: SVTOX_SCALE_PRESETS (comma list of netlist::scale_circuit_names()
// entries, default "dag10k,dag100k"), SVTOX_SCALE_VECTORS (full-sim
// vectors, default 200), SVTOX_SCALE_WORDS (word-parallel sweeps, default
// 100), SVTOX_SCALE_FLIPS (incremental flips, default 20000),
// SVTOX_SCALE_MAX_GATES (partition budget, default 2000); argv[1]
// overrides the output path. Non-Release builds refuse to write the
// artifact unless SVTOX_ALLOW_DEBUG_BENCH=1 (bench/common.hpp).
#include <sys/resource.h>

#include <string>
#include <vector>

#include "bench/common.hpp"
#include "netlist/generators.hpp"
#include "opt/problem.hpp"
#include "opt/state_search.hpp"
#include "sim/incremental.hpp"
#include "sim/sim.hpp"
#include "svc/hier.hpp"
#include "svc/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace svtox;

/// Peak resident set size so far, in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// --- Embedded pre-refactor (pointer-chasing) kernels ----------------------
// These walk the Gate-struct pointer API exactly as src/sim did before the
// FlatNetlist rewire: nested std::vector adjacency, int ids, per-gate
// cell_of() indirection. Keep them in sync with nothing -- they are the
// frozen baseline.

std::uint32_t pointer_local_state(const netlist::Netlist& netlist,
                                  const std::vector<bool>& values, int gate) {
  const netlist::Gate& g = netlist.gate(gate);
  std::uint32_t state = 0;
  for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
    if (values[static_cast<std::size_t>(g.fanins[pin])]) state |= 1u << pin;
  }
  return state;
}

std::vector<bool> pointer_simulate(const netlist::Netlist& netlist,
                                   const std::vector<bool>& input_values) {
  std::vector<bool> values(static_cast<std::size_t>(netlist.num_signals()), false);
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    values[static_cast<std::size_t>(netlist.control_points()[i])] = input_values[i];
  }
  for (int g : netlist.topological_order()) {
    const std::uint32_t state = pointer_local_state(netlist, values, g);
    values[static_cast<std::size_t>(netlist.gate(g).output)] =
        netlist.cell_of(g).topology().output(state);
  }
  return values;
}

std::vector<std::uint64_t> pointer_simulate64(
    const netlist::Netlist& netlist, const std::vector<std::uint64_t>& input_words) {
  std::vector<std::uint64_t> words(static_cast<std::size_t>(netlist.num_signals()), 0);
  for (int i = 0; i < netlist.num_control_points(); ++i) {
    words[static_cast<std::size_t>(netlist.control_points()[i])] = input_words[i];
  }
  for (int g : netlist.topological_order()) {
    const netlist::Gate& gate = netlist.gate(g);
    const cellkit::CellTopology& topo = netlist.cell_of(g).topology();
    const int k = topo.num_inputs();
    std::uint64_t out = 0;
    for (std::uint32_t state = 0; state < topo.num_states(); ++state) {
      if (!topo.output(state)) continue;
      std::uint64_t term = ~0ULL;
      for (int pin = 0; pin < k; ++pin) {
        const std::uint64_t v = words[static_cast<std::size_t>(gate.fanins[pin])];
        term &= ((state >> pin) & 1u) ? v : ~v;
      }
      out |= term;
    }
    words[static_cast<std::size_t>(gate.output)] = out;
  }
  return words;
}

/// The pre-refactor event-driven 2-valued resim: levelized worklist over
/// the pointer API (sinks() vector-of-structs, gate_level() per gate).
class PointerBoolSim {
 public:
  explicit PointerBoolSim(const netlist::Netlist& netlist) : netlist_(&netlist) {
    inputs_.assign(static_cast<std::size_t>(netlist.num_control_points()), false);
    values_ = pointer_simulate(netlist, inputs_);
    level_bucket_.resize(static_cast<std::size_t>(netlist.depth()) + 1);
    gate_epoch_.assign(static_cast<std::size_t>(netlist.num_gates()), 0);
  }

  const std::vector<bool>& values() const { return values_; }

  void set_input(int index, bool value) {
    inputs_[static_cast<std::size_t>(index)] = value;
    const int signal = netlist_->control_points()[static_cast<std::size_t>(index)];
    if (values_[static_cast<std::size_t>(signal)] == value) return;
    values_[static_cast<std::size_t>(signal)] = value;
    ++epoch_;
    enqueue_sinks(signal);
    for (std::size_t level = 0; level < level_bucket_.size(); ++level) {
      std::vector<int>& bucket = level_bucket_[level];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const int g = bucket[i];
        const bool out = netlist_->cell_of(g).topology().output(
            pointer_local_state(*netlist_, values_, g));
        const std::size_t out_signal =
            static_cast<std::size_t>(netlist_->gate(g).output);
        if (values_[out_signal] == out) continue;
        values_[out_signal] = out;
        enqueue_sinks(static_cast<int>(out_signal));
      }
      bucket.clear();
    }
  }

 private:
  void enqueue_sinks(int signal) {
    for (const netlist::Sink& sink : netlist_->sinks(signal)) {
      const std::size_t g = static_cast<std::size_t>(sink.gate);
      if (gate_epoch_[g] == epoch_) continue;
      gate_epoch_[g] = epoch_;
      level_bucket_[static_cast<std::size_t>(netlist_->gate_level(sink.gate))]
          .push_back(sink.gate);
    }
  }

  const netlist::Netlist* netlist_;
  std::vector<bool> values_;
  std::vector<bool> inputs_;
  std::vector<std::vector<int>> level_bucket_;
  std::vector<std::uint64_t> gate_epoch_;
  std::uint64_t epoch_ = 0;
};

/// One flat-vs-pointer kernel comparison on `netlist`; appends a JSON row
/// and returns the flat/pointer speedup. Exits the process on any
/// bit-identity violation.
struct KernelRow {
  std::string kernel;
  double pointer_s = 0.0;
  double flat_s = 0.0;
  double pointer_gps = 0.0;  ///< gate-evals per second
  double flat_gps = 0.0;
  double speedup_x = 0.0;
};

KernelRow bench_full_sim(const netlist::Netlist& netlist, int vectors) {
  Rng rng(77);
  std::vector<std::vector<bool>> inputs(static_cast<std::size_t>(vectors));
  for (auto& v : inputs) v = rng.next_bits(static_cast<std::size_t>(netlist.num_control_points()));

  KernelRow row;
  row.kernel = "full_sim";
  std::size_t checksum_pointer = 0, checksum_flat = 0;
  Timer timer;
  for (const auto& v : inputs) {
    const std::vector<bool> values = pointer_simulate(netlist, v);
    checksum_pointer += static_cast<std::size_t>(values.back());
  }
  row.pointer_s = timer.seconds();
  timer.reset();
  for (const auto& v : inputs) {
    const std::vector<bool> values = sim::simulate(netlist, v);
    checksum_flat += static_cast<std::size_t>(values.back());
  }
  row.flat_s = timer.seconds();
  // Cheap checksum during timing; one full vector compared exactly after.
  if (checksum_pointer != checksum_flat ||
      pointer_simulate(netlist, inputs[0]) != sim::simulate(netlist, inputs[0])) {
    std::fprintf(stderr, "FATAL: full_sim flat/pointer mismatch on %s\n",
                 netlist.name().c_str());
    std::exit(1);
  }
  const double evals = static_cast<double>(netlist.num_gates()) * vectors;
  row.pointer_gps = evals / row.pointer_s;
  row.flat_gps = evals / row.flat_s;
  row.speedup_x = row.pointer_s / row.flat_s;
  return row;
}

KernelRow bench_sim64(const netlist::Netlist& netlist, int sweeps) {
  Rng rng(78);
  std::vector<std::vector<std::uint64_t>> inputs(static_cast<std::size_t>(sweeps));
  for (auto& words : inputs) {
    words.resize(static_cast<std::size_t>(netlist.num_control_points()));
    for (auto& w : words) w = rng.next_u64();
  }

  KernelRow row;
  row.kernel = "sim64";
  std::uint64_t checksum_pointer = 0, checksum_flat = 0;
  Timer timer;
  for (const auto& words : inputs) {
    checksum_pointer ^= pointer_simulate64(netlist, words).back();
  }
  row.pointer_s = timer.seconds();
  timer.reset();
  for (const auto& words : inputs) {
    checksum_flat ^= sim::simulate64(netlist, words).back();
  }
  row.flat_s = timer.seconds();
  if (checksum_pointer != checksum_flat ||
      pointer_simulate64(netlist, inputs[0]) != sim::simulate64(netlist, inputs[0])) {
    std::fprintf(stderr, "FATAL: sim64 flat/pointer mismatch on %s\n",
                 netlist.name().c_str());
    std::exit(1);
  }
  // 64 vectors per sweep.
  const double evals = static_cast<double>(netlist.num_gates()) * sweeps * 64.0;
  row.pointer_gps = evals / row.pointer_s;
  row.flat_gps = evals / row.flat_s;
  row.speedup_x = row.pointer_s / row.flat_s;
  return row;
}

KernelRow bench_incremental(const netlist::Netlist& netlist, int flips) {
  Rng rng(79);
  std::vector<int> indices(static_cast<std::size_t>(flips));
  for (auto& i : indices) {
    i = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(netlist.num_control_points())));
  }

  KernelRow row;
  row.kernel = "incremental";
  PointerBoolSim pointer(netlist);
  std::vector<bool> state(static_cast<std::size_t>(netlist.num_control_points()), false);
  Timer timer;
  for (int i : indices) {
    state[static_cast<std::size_t>(i)] = !state[static_cast<std::size_t>(i)];
    pointer.set_input(i, state[static_cast<std::size_t>(i)]);
  }
  row.pointer_s = timer.seconds();

  sim::IncrementalBoolSim flat(netlist);
  std::fill(state.begin(), state.end(), false);
  timer.reset();
  for (int i : indices) {
    state[static_cast<std::size_t>(i)] = !state[static_cast<std::size_t>(i)];
    flat.set_input(i, state[static_cast<std::size_t>(i)], nullptr);
    flat.commit();  // same steady-state discipline as the leaf evaluator
  }
  row.flat_s = timer.seconds();
  if (pointer.values() != flat.values()) {
    std::fprintf(stderr, "FATAL: incremental flat/pointer mismatch on %s\n",
                 netlist.name().c_str());
    std::exit(1);
  }
  // Same event-driven algorithm on both sides: count flips, not gate-evals
  // (the per-flip cone size is identical by construction).
  row.pointer_gps = flips / row.pointer_s;
  row.flat_gps = flips / row.flat_s;
  row.speedup_x = row.pointer_s / row.flat_s;
  return row;
}

svc::Json kernel_json(const KernelRow& row) {
  svc::Json json = svc::Json::object();
  json.set("kernel", row.kernel);
  json.set("pointer_s", row.pointer_s);
  json.set("flat_s", row.flat_s);
  json.set("pointer_per_s", row.pointer_gps);
  json.set("flat_per_s", row.flat_gps);
  json.set("speedup_x", row.speedup_x);
  return json;
}

std::vector<std::string> preset_list() {
  std::vector<std::string> presets;
  const char* env = std::getenv("SVTOX_SCALE_PRESETS");
  for (auto part : split(env != nullptr ? env : "dag10k,dag100k", ',')) {
    if (!trim(part).empty()) presets.emplace_back(trim(part));
  }
  return presets;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace svtox;
  bench::print_header("flat SoA core + hierarchical optimization at scale",
                      "engineering artifact (no paper table)");
  const char* out_path = argc > 1 ? argv[1] : "BENCH_scale.json";
  bench::check_artifact_build_type(out_path);

  const int vectors = bench::env_int("SVTOX_SCALE_VECTORS", 200);
  const int sweeps = bench::env_int("SVTOX_SCALE_WORDS", 100);
  const int flips = bench::env_int("SVTOX_SCALE_FLIPS", 20000);
  const int max_gates = bench::env_int("SVTOX_SCALE_MAX_GATES", 2000);
  const std::vector<std::string> presets = preset_list();

  const auto library = liberty::Library::build(model::TechParams::nominal(), {});

  svc::Json doc = svc::Json::object();
  doc.set("bench", "scale");
  svc::Json context = svc::Json::object();
  context.set("svtox_build_type", bench::build_type());
  context.set("vectors", vectors);
  context.set("word_sweeps", sweeps);
  context.set("flips", flips);
  context.set("partition_max_gates", max_gates);
  doc.set("context", context);

  // --- Flat-vs-pointer kernels -----------------------------------------
  // c6288 (the acceptance circuit) plus the largest preset of the run.
  svc::Json::Array kernel_rows;
  std::vector<std::pair<std::string, netlist::Netlist>> kernel_circuits;
  kernel_circuits.emplace_back("c6288", netlist::make_benchmark("c6288", library));
  if (!presets.empty()) {
    const std::string& largest = presets.back();
    kernel_circuits.emplace_back(largest,
                                 netlist::make_scale_circuit(library, largest));
  }
  for (const auto& [name, circuit] : kernel_circuits) {
    std::printf("kernels on %s (%d gates):\n", name.c_str(), circuit.num_gates());
    for (const KernelRow& row : {bench_full_sim(circuit, vectors),
                                 bench_sim64(circuit, sweeps),
                                 bench_incremental(circuit, flips)}) {
      std::printf("  %-12s pointer %8.4fs  flat %8.4fs  (%.2fx)\n",
                  row.kernel.c_str(), row.pointer_s, row.flat_s, row.speedup_x);
      svc::Json json = kernel_json(row);
      json.set("circuit", name);
      json.set("gates", circuit.num_gates());
      kernel_rows.push_back(std::move(json));
    }
  }
  doc.set("kernels", svc::Json(std::move(kernel_rows)));
  std::printf("\n");

  // --- Hierarchical Heu1 on the scale presets --------------------------
  svc::Json::Array hier_rows;
  for (const std::string& preset : presets) {
    Timer build_timer;
    const netlist::Netlist circuit = netlist::make_scale_circuit(library, preset);
    const double build_s = build_timer.seconds();

    svc::HierOptions options;
    options.partition.max_gates = max_gates;
    options.random_vectors = 64;
    const svc::HierResult hr = svc::optimize_hierarchical(circuit, options);

    const double rss = peak_rss_mib();
    std::printf(
        "hier heu1 %-12s %7d gates  build %6.2fs  solve %7.2fs  "
        "%4d parts (%llu solved, %llu cached)  %10.1f uA  "
        "delay %8.0f / %8.0f ps  peak RSS %7.1f MiB\n",
        preset.c_str(), circuit.num_gates(), build_s, hr.runtime_s,
        hr.partitions, static_cast<unsigned long long>(hr.unique_solves),
        static_cast<unsigned long long>(hr.cache_hits),
        hr.solution.leakage_na / 1e3, hr.solution.delay_ps, hr.constraint_ps,
        rss);
    if (hr.solution.delay_ps > hr.constraint_ps) {
      std::fprintf(stderr, "FATAL: %s violates the global delay constraint\n",
                   preset.c_str());
      return 1;
    }

    svc::Json row = svc::Json::object();
    row.set("preset", preset);
    row.set("gates", circuit.num_gates());
    row.set("build_s", build_s);
    row.set("hier_s", hr.runtime_s);
    row.set("partitions", hr.partitions);
    row.set("levels", hr.levels);
    row.set("unique_solves", static_cast<double>(hr.unique_solves));
    row.set("cache_hits", static_cast<double>(hr.cache_hits));
    row.set("leakage_ua", hr.solution.leakage_na / 1e3);
    row.set("delay_ps", hr.solution.delay_ps);
    row.set("constraint_ps", hr.constraint_ps);
    row.set("repaired_gates", hr.repaired_gates);
    row.set("refine_passes", hr.refine_passes_run);
    row.set("refine_accepted", hr.refine_accepted);
    row.set("peak_rss_mib", rss);
    hier_rows.push_back(std::move(row));
  }
  doc.set("hier", svc::Json(std::move(hier_rows)));

  // --- Hierarchical vs flat Heu1 gap on c6288 --------------------------
  {
    const netlist::Netlist& circuit = kernel_circuits[0].second;
    svc::HierOptions options;
    options.partition.max_gates = std::min(max_gates, 400);
    options.random_vectors = 64;
    const svc::HierResult hier = svc::optimize_hierarchical(circuit, options);

    Timer timer;
    const opt::AssignmentProblem problem(circuit, options.penalty_fraction);
    const opt::Solution flat = opt::heuristic1(problem);
    const double flat_s = timer.seconds();
    const double ratio = hier.solution.leakage_na / flat.leakage_na;
    const double gap = 100.0 * (ratio - 1.0);
    std::printf(
        "\ngap on c6288: hier %.3f uA (%.2fs) vs flat heu1 %.3f uA (%.2fs) "
        "-> %+.1f%% (ratio %.4f)\n",
        hier.solution.leakage_na / 1e3, hier.runtime_s, flat.leakage_na / 1e3,
        flat_s, gap, ratio);
    // The quality gate of the boundary-aware sweep + stitch-refine flow:
    // the same assertion `svtox hier --compare-flat --max-gap` enforces.
    const double max_gap = bench::env_double("SVTOX_SCALE_MAX_GAP", 1.10);
    if (ratio > max_gap) {
      std::fprintf(stderr,
                   "FATAL: c6288 hier/flat leakage ratio %.4f exceeds %.4f "
                   "(SVTOX_SCALE_MAX_GAP)\n",
                   ratio, max_gap);
      return 4;
    }

    svc::Json row = svc::Json::object();
    row.set("circuit", "c6288");
    row.set("partition_max_gates", options.partition.max_gates);
    row.set("hier_leakage_ua", hier.solution.leakage_na / 1e3);
    row.set("hier_s", hier.runtime_s);
    row.set("hier_levels", hier.levels);
    row.set("hier_repaired_gates", hier.repaired_gates);
    row.set("refine_passes", hier.refine_passes_run);
    row.set("refine_accepted", hier.refine_accepted);
    row.set("flat_leakage_ua", flat.leakage_na / 1e3);
    row.set("flat_s", flat_s);
    row.set("gap_percent", gap);
    row.set("hier_gap_ratio", ratio);
    row.set("max_gap_ratio", max_gap);
    doc.set("gap_vs_flat", row);
  }

  doc.set("peak_rss_mib", peak_rss_mib());

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  const std::string text = doc.dump();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}
