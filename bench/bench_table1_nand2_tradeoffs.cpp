// Reproduces Table 1: delay/leakage trade-offs for the NAND2 cell versions
// at each canonical input state (leakage in nA; per-pin normalized delays).
#include "bench/common.hpp"
#include "cellkit/state.hpp"
#include "cellkit/delay.hpp"
#include "cellkit/variants.hpp"

namespace {

using namespace svtox;

// Paper Table 1 rows (state, trade-off point, leakage nA, normalized delays
// rise A/B, fall A/B).
struct PaperRow {
  const char* state;
  cellkit::TradeoffPoint point;
  double leak_na;
  double rise_a, rise_b, fall_a, fall_b;
};
constexpr PaperRow kPaper[] = {
    {"11", cellkit::TradeoffPoint::kMinDelay, 270.4, 1.00, 1.00, 1.00, 1.00},
    {"11", cellkit::TradeoffPoint::kFastRise, 109.1, 1.00, 1.36, 1.27, 1.27},
    {"11", cellkit::TradeoffPoint::kFastFall, 91.4, 1.36, 1.36, 1.00, 1.00},
    {"11", cellkit::TradeoffPoint::kMinLeakage, 19.5, 1.36, 1.37, 1.27, 1.27},
    {"00", cellkit::TradeoffPoint::kMinDelay, 41.2, 1.00, 1.00, 1.00, 1.00},
    {"00", cellkit::TradeoffPoint::kMinLeakage, 14.0, 1.00, 1.00, 1.12, 1.16},
    {"10", cellkit::TradeoffPoint::kMinDelay, 91.8, 1.00, 1.00, 1.00, 1.00},
    {"10", cellkit::TradeoffPoint::kMinLeakage, 13.3, 1.00, 1.00, 1.12, 1.16},
};

}  // namespace

int main() {
  bench::print_header("Table 1 -- NAND2 cell-version trade-offs",
                      "Lee et al., DATE 2004, Table 1");

  const auto& tech = model::TechParams::nominal();
  const cellkit::CellTopology nand2 = cellkit::make_standard_cell("NAND2", tech);
  const cellkit::CellVersionSet versions =
      cellkit::generate_versions(nand2, tech, cellkit::VariantOptions{});

  AsciiTable table;
  table.set_header({"state", "cell version", "leakage nA (paper/ours)",
                    "rise A (p/o)", "rise B (p/o)", "fall A (p/o)", "fall B (p/o)"});

  std::string last_state;
  for (const PaperRow& row : kPaper) {
    // "10" in the paper means pin A = 1, pin B = 0, i.e. our bit 0 set.
    const std::uint32_t state = cellkit::state_from_string(row.state);
    const auto& st = versions.tradeoffs(state);
    const int v = st.version_index[static_cast<int>(row.point)];
    if (v < 0) continue;
    const auto& assignment = versions.versions()[static_cast<std::size_t>(v)].assignment;

    const double leak = cellkit::cell_leakage(nand2, tech, state, assignment).total_na();
    const double rise_a = cellkit::delay_factor(nand2, tech, assignment, 0, cellkit::Edge::kRise);
    const double rise_b = cellkit::delay_factor(nand2, tech, assignment, 1, cellkit::Edge::kRise);
    const double fall_a = cellkit::delay_factor(nand2, tech, assignment, 0, cellkit::Edge::kFall);
    const double fall_b = cellkit::delay_factor(nand2, tech, assignment, 1, cellkit::Edge::kFall);

    if (row.state != last_state) {
      table.add_separator();
      last_state = row.state;
    }
    table.add_row({row.state, cellkit::to_string(row.point),
                   report::paper_vs_measured(row.leak_na, leak, 1),
                   report::paper_vs_measured(row.rise_a, rise_a, 2),
                   report::paper_vs_measured(row.rise_b, rise_b, 2),
                   report::paper_vs_measured(row.fall_a, fall_a, 2),
                   report::paper_vs_measured(row.fall_b, fall_b, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: the analytical model is calibrated to the paper's published\n"
              "ratios (17.8X/16.7X Isub, 11X Igate, ~36%% Igate share); absolute\n"
              "currents land within the same range, trade-off ordering matches.\n");
  return 0;
}
