// Shared scaffolding for the table/figure reproduction benches.
//
// Environment knobs (all optional):
//   SVTOX_TIME_LIMIT   seconds per Heu2/state-only search   (default 1.0)
//   SVTOX_VECTORS      Monte-Carlo vectors                  (default 10000)
//   SVTOX_CIRCUITS     comma-separated subset of the suite  (default all)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer.hpp"
#include "liberty/library.hpp"
#include "model/tech.hpp"
#include "netlist/benchmarks.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace svtox::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? parse_double(value) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<int>(parse_size(value)) : fallback;
}

inline double time_limit_s() { return env_double("SVTOX_TIME_LIMIT", 1.0); }
inline int mc_vectors() { return env_int("SVTOX_VECTORS", 10000); }

/// The CMake build type this binary was compiled under (lowercased;
/// sanitizers appended as "+<name>san"). Injected per-target by
/// bench/CMakeLists.txt, so it reflects the bench's own flags -- unlike
/// google-benchmark's `library_build_type` context field, which describes
/// the system benchmark library.
inline const char* build_type() {
#ifdef SVTOX_BUILD_TYPE
  return SVTOX_BUILD_TYPE;
#else
  return "unknown";
#endif
}

inline bool is_release_build() {
  return std::string_view(build_type()) == "release";
}

/// Provenance guard for benchmark artifacts. Non-Release timings are not
/// comparable to Release ones, and a BENCH_*.json carrying them silently
/// poisons every later diff against it. Policy: always warn on a
/// non-Release run; refuse (exit 3) to write an artifact unless
/// SVTOX_ALLOW_DEBUG_BENCH=1 is set, in which case callers must tag the
/// artifact with build_type() so the capture stays self-describing.
inline void check_artifact_build_type(const char* artifact_path) {
  if (is_release_build()) return;
  std::fprintf(stderr,
               "bench: WARNING: built as '%s', not 'release' -- timings are "
               "not comparable to Release captures\n",
               build_type());
  if (std::getenv("SVTOX_ALLOW_DEBUG_BENCH") == nullptr) {
    std::fprintf(stderr,
                 "bench: refusing to write %s from a non-Release build "
                 "(set SVTOX_ALLOW_DEBUG_BENCH=1 to override; the artifact "
                 "is tagged with its build type either way)\n",
                 artifact_path);
    std::exit(3);
  }
}

/// The circuits to run: the full paper suite, or the SVTOX_CIRCUITS subset.
inline std::vector<std::string> circuit_names() {
  std::vector<std::string> names;
  if (const char* env = std::getenv("SVTOX_CIRCUITS")) {
    for (auto part : split(env, ',')) {
      if (!trim(part).empty()) names.emplace_back(trim(part));
    }
    return names;
  }
  for (const auto& spec : netlist::benchmark_suite()) names.push_back(spec.name);
  return names;
}

/// Default RunConfig shared by the benches.
inline core::RunConfig run_config(double penalty) {
  core::RunConfig config;
  config.penalty_fraction = penalty;
  config.time_limit_s = time_limit_s();
  config.random_vectors = mc_vectors();
  return config;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("== svtox reproduction: %s ==\n", what);
  std::printf("   paper reference: %s\n", paper_ref);
  std::printf("   (columns named 'paper/ours' show the published value next to this run)\n\n");
}

}  // namespace svtox::bench
