// Shared scaffolding for the table/figure reproduction benches.
//
// Environment knobs (all optional):
//   SVTOX_TIME_LIMIT   seconds per Heu2/state-only search   (default 1.0)
//   SVTOX_VECTORS      Monte-Carlo vectors                  (default 10000)
//   SVTOX_CIRCUITS     comma-separated subset of the suite  (default all)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "liberty/library.hpp"
#include "model/tech.hpp"
#include "netlist/benchmarks.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace svtox::bench {

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? parse_double(value) : fallback;
}

inline int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<int>(parse_size(value)) : fallback;
}

inline double time_limit_s() { return env_double("SVTOX_TIME_LIMIT", 1.0); }
inline int mc_vectors() { return env_int("SVTOX_VECTORS", 10000); }

/// The circuits to run: the full paper suite, or the SVTOX_CIRCUITS subset.
inline std::vector<std::string> circuit_names() {
  std::vector<std::string> names;
  if (const char* env = std::getenv("SVTOX_CIRCUITS")) {
    for (auto part : split(env, ',')) {
      if (!trim(part).empty()) names.emplace_back(trim(part));
    }
    return names;
  }
  for (const auto& spec : netlist::benchmark_suite()) names.push_back(spec.name);
  return names;
}

/// Default RunConfig shared by the benches.
inline core::RunConfig run_config(double penalty) {
  core::RunConfig config;
  config.penalty_fraction = penalty;
  config.time_limit_s = time_limit_s();
  config.random_vectors = mc_vectors();
  return config;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("== svtox reproduction: %s ==\n", what);
  std::printf("   paper reference: %s\n", paper_ref);
  std::printf("   (columns named 'paper/ours' show the published value next to this run)\n\n");
}

}  // namespace svtox::bench
