// Reproduces Figure 5: leakage vs delay-penalty sweep for c7552, comparing
// the average-leakage baseline, state assignment alone, Vt+state, and the
// proposed method (Heu1; the paper notes Heu2 is nearly identical).
#include "bench/common.hpp"

int main() {
  using namespace svtox;
  bench::print_header("Figure 5 -- leakage vs delay penalty for c7552",
                      "Lee et al., DATE 2004, Figure 5");

  const auto& tech = model::TechParams::nominal();
  const auto library = liberty::Library::build(tech, {});
  const char* circuit_env = std::getenv("SVTOX_FIG5_CIRCUIT");
  const std::string circuit_name = circuit_env != nullptr ? circuit_env : "c7552";
  const auto circuit = netlist::make_benchmark(circuit_name, library);
  core::StandbyOptimizer optimizer(circuit);

  const double penalties[] = {0.0, 0.02, 0.05, 0.10, 0.15, 0.25, 0.50, 0.75, 1.0};

  AsciiTable table;
  table.set_header({"delay penalty", "average [uA]", "state-only [uA]",
                    "vt+state [uA]", "proposed heu1 [uA]", "heu1 X"});

  const double avg =
      optimizer.run(core::Method::kAverageRandom, bench::run_config(0.05)).leakage_ua;
  std::vector<double> proposed_series;
  for (double p : penalties) {
    const auto state = optimizer.run(core::Method::kStateOnly, bench::run_config(p));
    const auto vt = optimizer.run(core::Method::kVtState, bench::run_config(p));
    const auto h1 = optimizer.run(core::Method::kHeu1, bench::run_config(p));
    proposed_series.push_back(h1.leakage_ua);
    table.add_row({svtox::format_double(p * 100.0, 0) + "%", report::format_ua(avg),
                   report::format_ua(state.leakage_ua), report::format_ua(vt.leakage_ua),
                   report::format_ua(h1.leakage_ua), report::format_x(h1.reduction_x)});
  }
  std::printf("%s\n", table.render().c_str());

  // The figure's qualitative claims, checked numerically.
  const double at0 = proposed_series.front();
  const double at10 = proposed_series[3];
  const double at100 = proposed_series.back();
  std::printf("shape checks (paper Fig. 5):\n");
  std::printf("  gains at zero penalty:        %s (proposed %.1f uA vs avg %.1f uA)\n",
              at0 < 0.7 * avg ? "YES" : "NO ", at0, avg);
  std::printf("  saturation beyond ~10%%:       %s (10%% -> 100%% improves only %.0f%%)\n",
              (at10 - at100) < 0.6 * (proposed_series.front() - at100) ? "YES" : "NO ",
              100.0 * (at10 - at100) / at10);
  std::printf("  proposed << state-only everywhere: see columns above\n");
  return 0;
}
