// Reproduces Table 5: the impact of library options at a 5% delay penalty
// (Heu1): 4-option vs 2-option trade-off points, individual vs uniform
// stack Vt control.
#include "bench/common.hpp"

int main() {
  using namespace svtox;
  bench::print_header("Table 5 -- leakage under different cell-library options",
                      "Lee et al., DATE 2004, Table 5");

  const auto& tech = model::TechParams::nominal();

  struct LibBuild {
    const char* label;
    liberty::Library library;
  };
  auto build = [&](bool four_point, bool uniform) {
    liberty::LibraryOptions options;
    options.variant_options.four_point = four_point;
    options.variant_options.uniform_stack = uniform;
    return liberty::Library::build(tech, options);
  };
  LibBuild builds[] = {
      {"4-option", build(true, false)},
      {"2-option", build(false, false)},
      {"4-option uniform", build(true, true)},
      {"2-option uniform", build(false, true)},
  };

  AsciiTable table;
  table.set_header({"circuit", "avg (p/o uA)", "4-opt X (p/o)", "2-opt X (p/o)",
                    "4-opt uniform X (p/o)", "2-opt uniform X (p/o)"});

  double sums[4] = {0, 0, 0, 0};
  double paper_sums[4] = {0, 0, 0, 0};
  double area_sums[4] = {0, 0, 0, 0};
  int rows = 0;

  for (const std::string& name : bench::circuit_names()) {
    const auto& spec = netlist::benchmark_spec(name);
    // Build the circuit once against the first library and rebind for the
    // others so all four see the identical structure.
    const auto circuit = netlist::make_benchmark(name, builds[0].library);

    const double paper_x[4] = {
        spec.paper.avg_random_ua / spec.paper.heu1_5_ua,
        spec.paper.avg_random_ua / spec.paper.opt2_5_ua,
        spec.paper.avg_random_ua / spec.paper.uniform4_5_ua,
        spec.paper.avg_random_ua / spec.paper.uniform2_5_ua,
    };

    std::vector<std::string> row = {name};
    double measured_x[4];
    double area_overhead_pct[4];
    double avg_ua = 0.0;
    for (int b = 0; b < 4; ++b) {
      const auto bound =
          b == 0 ? circuit : netlist::rebind(circuit, builds[b].library);
      core::StandbyOptimizer optimizer(bound);
      const auto result = optimizer.run(core::Method::kHeu1, bench::run_config(0.05));
      measured_x[b] = result.reduction_x;
      const double base_area = sim::circuit_area(bound, sim::fastest_config(bound));
      area_overhead_pct[b] =
          100.0 * (sim::circuit_area(bound, result.solution.config) / base_area - 1.0);
      if (b == 0) {
        avg_ua =
            optimizer.run(core::Method::kAverageRandom, bench::run_config(0.05)).leakage_ua;
      }
    }
    row.push_back(report::paper_vs_measured(spec.paper.avg_random_ua, avg_ua));
    for (int b = 0; b < 4; ++b) {
      row.push_back(report::paper_vs_measured(paper_x[b], measured_x[b]) + "  (+" +
                    format_double(area_overhead_pct[b], 1) + "% area)");
      sums[b] += measured_x[b];
      paper_sums[b] += paper_x[b];
      area_sums[b] += area_overhead_pct[b];
    }
    table.add_row(row);
    ++rows;
  }
  if (rows > 0) {
    table.add_separator();
    std::vector<std::string> avg_row = {"AVG", ""};
    for (int b = 0; b < 4; ++b) {
      avg_row.push_back(report::paper_vs_measured(paper_sums[b] / rows, sums[b] / rows, 2) +
                        "  (+" + format_double(area_sums[b] / rows, 1) + "% area)");
    }
    table.add_row(avg_row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper headline: 2-option ~= 4-option (5.27 vs 5.28 average X);\n"
              "uniform stacks cost ~10%% leakage (4.91X) but, as the paper's area\n"
              "discussion expects, remove the intra-stack spacing overhead -- the\n"
              "(+x%% area) annotations quantify that trade-off with our area rules.\n");
  return 0;
}
