// Reproduces Table 2: the number of library cell versions required per
// archetype for 4 and 2 trade-off points.
#include "bench/common.hpp"
#include "cellkit/variants.hpp"

int main() {
  using namespace svtox;
  bench::print_header("Table 2 -- number of needed library cells",
                      "Lee et al., DATE 2004, Table 2");

  struct PaperRow {
    const char* cell;
    int four;
    int two;
  };
  constexpr PaperRow kPaper[] = {
      {"INV", 5, 3}, {"NAND2", 5, 3}, {"NAND3", 5, 3}, {"NOR2", 8, 4}, {"NOR3", 9, 5},
  };

  const auto& tech = model::TechParams::nominal();
  AsciiTable table;
  table.set_header({"cell", "4 trade-off points (paper/ours)",
                    "2 trade-off points (paper/ours)"});
  for (const PaperRow& row : kPaper) {
    const cellkit::CellTopology topo = cellkit::make_standard_cell(row.cell, tech);
    cellkit::VariantOptions four;
    cellkit::VariantOptions two;
    two.four_point = false;
    const int ours4 = cellkit::generate_versions(topo, tech, four).num_versions();
    const int ours2 = cellkit::generate_versions(topo, tech, two).num_versions();
    table.add_row({row.cell, std::to_string(row.four) + " / " + std::to_string(ours4),
                   std::to_string(row.two) + " / " + std::to_string(ours2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Extension beyond the paper's table: the archetypes it does not list.
  AsciiTable extra;
  extra.set_header({"cell (not in paper's table)", "4-point versions", "2-point versions"});
  for (const char* name : {"NAND4", "NOR4", "AOI21", "OAI21", "AOI22", "OAI22"}) {
    const cellkit::CellTopology topo = cellkit::make_standard_cell(name, tech);
    cellkit::VariantOptions four;
    cellkit::VariantOptions two;
    two.four_point = false;
    extra.add_row({name,
                   std::to_string(cellkit::generate_versions(topo, tech, four).num_versions()),
                   std::to_string(cellkit::generate_versions(topo, tech, two).num_versions())});
  }
  std::printf("%s\n", extra.render().c_str());
  std::printf(
      "deviation: NOR2 4-option is 7 here vs the paper's 8 -- our pin-reorder\n"
      "canonicalization also shares the state-11 fast-fall version with state\n"
      "01's, one version fewer with the same trade-off points (see DESIGN.md).\n");
  return 0;
}
