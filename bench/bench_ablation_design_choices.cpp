// Ablation bench (beyond the paper's tables): quantifies the design
// choices DESIGN.md calls out, on a representative circuit subset at the
// 5% penalty:
//   1. pin reordering (paper Sec. 3, Fig. 2(d)/(e)) on vs off,
//   2. the greedy gate visiting order (by-savings vs topological),
//   3. the nitrided-oxide technology extension (PMOS Igate appreciable),
//      where thick-Tox PMOS assignment becomes worthwhile.
#include "bench/common.hpp"
#include "opt/annealing.hpp"
#include "opt/state_search.hpp"
#include "opt/unknown_state.hpp"

int main() {
  using namespace svtox;
  bench::print_header("Ablations -- pin reorder, gate order, nitrided oxide",
                      "svtox DESIGN.md Sec. 5 (not a paper table)");

  const auto& tech = model::TechParams::nominal();
  const auto library = liberty::Library::build(tech, {});
  const auto& nitrided_tech = model::TechParams::nitrided();
  const auto nitrided_library = liberty::Library::build(nitrided_tech, {});

  std::vector<std::string> names = bench::circuit_names();
  if (std::getenv("SVTOX_CIRCUITS") == nullptr) {
    names = {"c432", "c880", "c1908", "c3540", "alu64"};  // representative subset
  }

  AsciiTable table;
  table.set_header({"circuit", "heu1 X (full method)", "no pin reorder X",
                    "topological order X", "reverse topo X", "annealing X",
                    "unknown-state X", "nitrided-oxide X"});

  double sum_full = 0, sum_noreorder = 0, sum_topo = 0, sum_rtopo = 0, sum_sa = 0,
         sum_unknown = 0, sum_nit = 0;
  for (const std::string& name : names) {
    const auto circuit = netlist::make_benchmark(name, library);
    const double avg =
        sim::monte_carlo_leakage(circuit, sim::fastest_config(circuit),
                                 bench::mc_vectors(), 2004)
            .mean_na;

    const opt::AssignmentProblem full(circuit, 0.05);
    opt::ProblemOptions no_reorder_opts;
    no_reorder_opts.use_pin_reorder = false;
    const opt::AssignmentProblem no_reorder(circuit, 0.05, no_reorder_opts);

    const double full_x = avg / opt::heuristic1(full).leakage_na;
    const double nr_x = avg / opt::heuristic1(no_reorder).leakage_na;
    const double topo_x =
        avg / opt::heuristic1(full, opt::GateOrder::kTopological).leakage_na;
    const double rtopo_x =
        avg / opt::heuristic1(full, opt::GateOrder::kReverseTopological).leakage_na;
    opt::AnnealingOptions sa;
    sa.time_limit_s = bench::time_limit_s();
    const double sa_x = avg / opt::simulated_annealing(full, sa).leakage_na;

    // The paper's strawman: the best Vt/Tox assignment with *unknown*
    // standby state, judged by its average leakage at the same budget.
    const auto unknown = opt::assign_unknown_state(full);
    const double unknown_x = avg / unknown.average_leakage_na;

    // Nitrided oxide: both the average and the optimized numbers move.
    const auto nit_circuit = netlist::rebind(circuit, nitrided_library);
    const double nit_avg =
        sim::monte_carlo_leakage(nit_circuit, sim::fastest_config(nit_circuit),
                                 bench::mc_vectors(), 2004)
            .mean_na;
    const opt::AssignmentProblem nit_problem(nit_circuit, 0.05);
    const double nit_x = nit_avg / opt::heuristic1(nit_problem).leakage_na;

    table.add_row({name, report::format_x(full_x), report::format_x(nr_x),
                   report::format_x(topo_x), report::format_x(rtopo_x),
                   report::format_x(sa_x), report::format_x(unknown_x),
                   report::format_x(nit_x)});
    sum_full += full_x;
    sum_noreorder += nr_x;
    sum_topo += topo_x;
    sum_rtopo += rtopo_x;
    sum_sa += sa_x;
    sum_unknown += unknown_x;
    sum_nit += nit_x;
  }
  const double n = static_cast<double>(names.size());
  table.add_separator();
  table.add_row({"AVG", report::format_x(sum_full / n), report::format_x(sum_noreorder / n),
                 report::format_x(sum_topo / n), report::format_x(sum_rtopo / n),
                 report::format_x(sum_sa / n), report::format_x(sum_unknown / n),
                 report::format_x(sum_nit / n)});
  std::printf("%s\n", table.render().c_str());
  std::printf("readings: pin reordering buys its share of the reduction for free\n"
              "(no delay cost at the fastest version); the by-savings gate order is\n"
              "the default because it spends the delay budget on the leakiest gates\n"
              "first; under nitrided oxide the library also thickens PMOS devices\n"
              "and the method keeps working (the paper's Sec. 2 extension).\n");
  return 0;
}
